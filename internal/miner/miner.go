// Package miner implements the sequential mining algorithms of the DESQ
// framework that the distributed algorithms of the paper build on:
//
//   - MineCount (DESQ-COUNT): enumerate the candidate subsequences of every
//     input sequence and count them. Simple, but exponential in the worst
//     case; used as the reference implementation and by the naive distributed
//     baselines.
//   - MineDFS (DESQ-DFS): pattern-growth mining with projected databases of
//     FST snapshots. This is the local miner used by D-SEQ (Sec. V-C) and the
//     sequential baseline of Table V. It supports pivot-restricted mining and
//     the early-stopping heuristic of the paper.
package miner

import (
	"math/bits"
	"slices"
	"sort"
	"sync"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
)

// Pattern is one mined frequent sequence together with its frequency.
type Pattern struct {
	Items []dict.ItemID
	Freq  int64
}

// WeightedSequence is an input sequence with a multiplicity. Plain databases
// use weight 1; aggregated representations (D-CAND NFAs, deduplicated
// rewritten sequences) use larger weights.
type WeightedSequence struct {
	Items  []dict.ItemID
	Weight int64
}

// Weighted wraps a plain database into weight-1 sequences.
func Weighted(db [][]dict.ItemID) []WeightedSequence {
	out := make([]WeightedSequence, len(db))
	for i, s := range db {
		out[i] = WeightedSequence{Items: s, Weight: 1}
	}
	return out
}

// SortPatterns orders patterns by decreasing frequency and then
// lexicographically by items, in place.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Freq != ps[j].Freq {
			return ps[i].Freq > ps[j].Freq
		}
		return lessSeq(ps[i].Items, ps[j].Items)
	})
}

// PatternsToMap converts patterns into a map keyed by the decoded
// space-separated item names. Mostly useful in tests.
func PatternsToMap(d *dict.Dictionary, ps []Pattern) map[string]int64 {
	out := make(map[string]int64, len(ps))
	for _, p := range ps {
		out[d.DecodeString(p.Items)] = p.Freq
	}
	return out
}

func lessSeq(a, b []dict.ItemID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// CountOptions configures MineCount and SupportOf.
type CountOptions struct {
	// Prefilter enables the two-pass trick: a cheap backward reachability scan
	// (fst.Flat.CanAccept) skips sequences without any accepting run before
	// the full candidate enumeration. Output is identical either way, since
	// such sequences contribute no candidates.
	Prefilter bool
}

// MineCount implements DESQ-COUNT: it enumerates Gσπ(T) for every input
// sequence, sums the weights per candidate, and reports the candidates whose
// support reaches sigma.
func MineCount(f *fst.FST, db []WeightedSequence, sigma int64) []Pattern {
	return MineCountOpts(f, db, sigma, CountOptions{})
}

// MineCountOpts is MineCount with options. The counting loop runs entirely on
// the flat FST form: candidates are enumerated by Flat.ForEachDistinctCandidate
// (scratch-backed, deduplicated per sequence) and aggregated in a pooled
// open-addressing table over interned item slices, so steady-state counting
// allocates only arena growth and the reported patterns.
func MineCountOpts(f *fst.FST, db []WeightedSequence, sigma int64, opts CountOptions) []Pattern {
	fl := f.Flatten()
	tab := candPool.Get().(*candTable)
	tab.reset()
	var weight int64
	add := func(cand []dict.ItemID) bool {
		i, _ := tab.intern(cand)
		tab.entries[i].count += weight
		return true
	}
	for _, ws := range db {
		if opts.Prefilter && !fl.CanAccept(ws.Items) {
			continue
		}
		weight = ws.Weight
		fl.ForEachDistinctCandidate(ws.Items, sigma, add)
	}
	var out []Pattern
	for i := range tab.entries {
		e := &tab.entries[i]
		if e.count >= sigma {
			items := append([]dict.ItemID(nil), tab.arena[e.off:e.off+e.n]...)
			out = append(out, Pattern{Items: items, Freq: e.count})
		}
	}
	SortPatterns(out)
	candPool.Put(tab)
	return out
}

// Key returns a compact string key identifying a pattern, suitable for use as
// a map key when merging partial results across database partitions. It is the
// canonical packed encoding of dict.PackKey; dict.UnpackKey decodes it.
func Key(seq []dict.ItemID) string { return dict.PackKey(seq) }

// SupportOf computes the exact support in db of every pattern present in the
// candidates set (keyed by Key). It is the counting phase of two-phase
// partitioned mining: phase one mines each partition with a scaled-down local
// threshold to obtain a candidate superset, phase two calls SupportOf per
// partition and sums the returned counts. sigma is used only for the global
// item-frequency pruning of candidate generation and must be the global
// threshold.
func SupportOf(f *fst.FST, db []WeightedSequence, sigma int64, candidates map[string]bool) map[string]int64 {
	return SupportOfOpts(f, db, sigma, candidates, CountOptions{})
}

// SupportOfOpts is SupportOf with options. Like MineCountOpts, the counting
// loop runs on the flat candidate enumeration: the candidate set is interned
// into a pooled open-addressing table once up front and each enumerated
// candidate is matched against it without forming a string key.
func SupportOfOpts(f *fst.FST, db []WeightedSequence, sigma int64, candidates map[string]bool, opts CountOptions) map[string]int64 {
	fl := f.Flatten()
	tab := candPool.Get().(*candTable)
	tab.reset()
	keys := make([]string, 0, len(candidates))
	for key, want := range candidates {
		if !want {
			continue
		}
		if i, inserted := tab.intern(dict.UnpackKey(key)); inserted {
			for len(keys) <= i {
				keys = append(keys, "")
			}
			keys[i] = key
		}
	}
	hit := make([]bool, len(tab.entries))
	var weight int64
	add := func(cand []dict.ItemID) bool {
		if i := tab.find(cand); i >= 0 {
			tab.entries[i].count += weight
			hit[i] = true
		}
		return true
	}
	for _, ws := range db {
		if opts.Prefilter && !fl.CanAccept(ws.Items) {
			continue
		}
		weight = ws.Weight
		fl.ForEachDistinctCandidate(ws.Items, sigma, add)
	}
	counts := make(map[string]int64, len(tab.entries))
	for i := range tab.entries {
		if hit[i] {
			counts[keys[i]] = tab.entries[i].count
		}
	}
	candPool.Put(tab)
	return counts
}

// candTable is an open-addressing hash table from candidate item sequences to
// weighted counts. Candidates are interned back-to-back in one arena and slots
// hold entry indices, so lookups and counting allocate nothing beyond arena
// growth; keys are hashed with dict.HashItems, the slice-level twin of the
// packed string keys (dict.PackKey) used across partition boundaries.
type candTable struct {
	arena   []dict.ItemID
	entries []candEntry
	slots   []int32 // entry index + 1; 0 = empty
}

type candEntry struct {
	off, n int32
	hash   uint64
	count  int64
}

var candPool = sync.Pool{New: func() any { return new(candTable) }}

func (ct *candTable) reset() {
	ct.arena = ct.arena[:0]
	ct.entries = ct.entries[:0]
	if len(ct.slots) == 0 {
		ct.slots = make([]int32, 256)
	} else {
		clear(ct.slots)
	}
}

// find returns the entry index of cand, or -1 when absent.
func (ct *candTable) find(cand []dict.ItemID) int {
	h := dict.HashItems(cand)
	mask := uint64(len(ct.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := ct.slots[i]
		if s == 0 {
			return -1
		}
		e := &ct.entries[s-1]
		if e.hash == h && slices.Equal(ct.arena[e.off:e.off+e.n], cand) {
			return int(s - 1)
		}
	}
}

// intern returns the entry index of cand, inserting a zero-count entry (and
// copying the items into the arena) when absent. The second result reports
// whether a new entry was created.
func (ct *candTable) intern(cand []dict.ItemID) (int, bool) {
	h := dict.HashItems(cand)
	mask := uint64(len(ct.slots) - 1)
	i := h & mask
	for {
		s := ct.slots[i]
		if s == 0 {
			break
		}
		e := &ct.entries[s-1]
		if e.hash == h && slices.Equal(ct.arena[e.off:e.off+e.n], cand) {
			return int(s - 1), false
		}
		i = (i + 1) & mask
	}
	idx := len(ct.entries)
	off := int32(len(ct.arena))
	ct.arena = append(ct.arena, cand...)
	ct.entries = append(ct.entries, candEntry{off: off, n: int32(len(cand)), hash: h})
	ct.slots[i] = int32(idx + 1)
	if 4*len(ct.entries) >= 3*len(ct.slots) {
		ct.grow()
	}
	return idx, true
}

// grow doubles the slot table and reinserts the live entries.
func (ct *candTable) grow() {
	size := 2 * len(ct.slots)
	ct.slots = make([]int32, size)
	mask := uint64(size - 1)
	for idx := range ct.entries {
		i := ct.entries[idx].hash & mask
		for ct.slots[i] != 0 {
			i = (i + 1) & mask
		}
		ct.slots[i] = int32(idx + 1)
	}
}

// DFSOptions configures MineDFS.
type DFSOptions struct {
	// Pivot restricts mining to a partition of item-based partitioning: only
	// expansion items <= Pivot are considered and only patterns that contain
	// Pivot are reported. Zero disables the restriction.
	Pivot dict.ItemID
	// EarlyStopping enables the heuristic of Sec. V-C: input sequences are
	// not used to grow prefixes that do not yet contain the pivot item beyond
	// the last position at which the pivot can still be produced. It has no
	// effect when Pivot is zero.
	EarlyStopping bool
	// Prefilter enables the paper's two-pass trick: a cheap two-row backward
	// reachability scan (fst.Flat.CanAccept) rejects sequences without any
	// accepting run before the per-sequence accept/finish matrices are built.
	// Output is byte-identical either way — such sequences contribute no
	// candidates and no pivots — the pass only avoids the full simulation
	// set-up for them.
	Prefilter bool
}

// MineDFS implements DESQ-DFS, the pattern-growth miner. It reports every
// subsequence S with fπ(S) >= sigma, subject to the pivot restriction in
// opts.
//
// The implementation works entirely on the flattened FST form (fst.Flat):
// per-sequence accept/finish matrices are bitsets, simulation snapshots are
// packed (pos, state) cells in int32 arrays, per-expansion projected databases
// are flat int32 buffers, and all per-call scratch comes from a sync.Pool —
// D-SEQ's reducer calls MineDFS once per pivot partition, so steady-state
// mining allocates only the per-sequence matrices and the reported patterns.
func MineDFS(f *fst.FST, db []WeightedSequence, sigma int64, opts DFSOptions) []Pattern {
	fl := f.Flatten()
	d := f.Dict()
	m := &dfsMiner{
		flat:  fl,
		dict:  d,
		db:    db,
		sigma: sigma,
		opts:  opts,
		cache: make([]seqCache, len(db)),
		words: fl.Words(),
	}
	if n := fl.NumStates(); n > 1 {
		m.stateBits = uint(bits.Len(uint(n - 1)))
	}
	// When fids are frequency-ordered (always true for built dictionaries),
	// the frequent-item and pivot checks collapse into one integer compare.
	if d.FrequencySorted() {
		m.useLimit = true
		m.limit = d.MaxFrequentFid(sigma)
		if opts.Pivot != dict.None && opts.Pivot < m.limit {
			m.limit = opts.Pivot
		}
	}
	m.sc = scratchPool.Get().(*dfsScratch)
	out := m.run()
	scratchPool.Put(m.sc)
	return out
}

// seqCache holds the per-sequence bitset matrices used during mining. Rows are
// words-sized bitsets over states; row i covers the input suffix T[i:].
type seqCache struct {
	accept    []uint64 // accepting-reachable coordinates (any outputs)
	finish    []uint64 // reachable end-of-input via ε-output transitions only
	lastPivot int32    // last position that can produce the pivot item (-1 if none)
	ready     bool
}

// maxStampCells caps the size of the epoch-stamped snapshot-dedup array (16MB
// of uint32 stamps); larger position×state spaces fall back to a hash set.
const maxStampCells = 1 << 22

// dfsScratch is the pooled per-call working memory of the miner: everything
// the expansion loop needs that is not per-sequence or per-output. Slices keep
// their capacity across MineDFS calls; generation counters make stale stamp
// contents harmless.
type dfsScratch struct {
	snapGen   uint32
	snapStamp []uint32           // per-cell generation stamps (snapshot dedup)
	snapSeen  map[int32]struct{} // fallback when the cell space exceeds maxStampCells
	stack     []int32            // DFS traversal stack of cells
	keys      []uint64           // packed (item<<32 | cell) targets of one sequence
	itemGen   uint32
	itemStamp []uint32 // per-item generation; itemSlot valid iff stamp == itemGen
	itemSlot  []int32
	frames    []frame
	rootProj  []int32
	prefix    []dict.ItemID
}

// frame is the per-recursion-depth expansion scratch: the distinct expansion
// items found at this depth and one projected-database buffer per item.
type frame struct {
	order []uint64 // packed (item<<32 | slot), sorted ascending before recursion
	exps  []expBuf
}

// expBuf accumulates the projected database of one expansion item as flat
// int32 records: [seqIdx, snapCount, cell, cell, ...].
type expBuf struct {
	buf      []int32
	lastSeq  int32
	countIdx int32
}

var scratchPool = sync.Pool{New: func() any { return new(dfsScratch) }}

type dfsMiner struct {
	flat  *fst.Flat
	dict  *dict.Dictionary
	db    []WeightedSequence
	sigma int64
	opts  DFSOptions
	cache []seqCache
	out   []Pattern

	words     int         // bitset words per matrix row
	stateBits uint        // cell = pos<<stateBits | state
	limit     dict.ItemID // expansion items must be <= limit (frequency ∧ pivot)
	useLimit  bool

	sc *dfsScratch
}

func (m *dfsMiner) run() []Pattern {
	sc := m.sc
	maxLen := 0
	for i := range m.db {
		if l := len(m.db[i].Items); l > maxLen {
			maxLen = l
		}
	}
	if cells := (maxLen + 1) << m.stateBits; cells <= maxStampCells {
		if len(sc.snapStamp) < cells {
			sc.snapStamp = make([]uint32, cells)
			sc.snapGen = 0
		}
	} else {
		sc.snapStamp = nil
		if sc.snapSeen == nil {
			sc.snapSeen = make(map[int32]struct{})
		}
	}
	if vocab := m.dict.Size() + 1; len(sc.itemStamp) < vocab {
		sc.itemStamp = make([]uint32, vocab)
		sc.itemSlot = make([]int32, vocab)
		sc.itemGen = 0
	}

	sc.rootProj = sc.rootProj[:0]
	initCell := int32(m.flat.Initial()) // pos 0 → cell = state
	initState := m.flat.Initial()
	for i := range m.db {
		T := m.db[i].Items
		if len(T) == 0 {
			continue
		}
		if m.opts.Prefilter && !m.flat.CanAccept(T) {
			continue // sequence has no accepting run at all
		}
		c := m.cacheFor(i)
		if c.accept[initState>>6]&(1<<(uint(initState)&63)) == 0 {
			continue // sequence has no accepting run at all
		}
		sc.rootProj = append(sc.rootProj, int32(i), 1, initCell)
	}
	if m.prefixSupport(sc.rootProj) >= m.sigma {
		m.expand(0, sc.rootProj)
	}
	SortPatterns(m.out)
	return m.out
}

func (m *dfsMiner) cacheFor(i int) *seqCache {
	c := &m.cache[i]
	if c.ready {
		return c
	}
	T := m.db[i].Items
	rows := (len(T) + 1) * m.words
	buf := make([]uint64, 2*rows)
	c.accept = m.flat.AcceptBits(T, buf[:rows])
	c.finish = m.flat.FinishBits(T, buf[rows:])
	c.lastPivot = -1
	if m.opts.Pivot != dict.None {
		c.lastPivot = int32(m.lastPivotPosition(T))
	}
	c.ready = true
	return c
}

// lastPivotPosition returns the last position of T at which some transition
// can output the pivot item (conservatively ignoring states), or -1.
func (m *dfsMiner) lastPivotPosition(T []dict.ItemID) int {
	last := -1
	nt := m.flat.NumTransitions()
	for i, t := range T {
		for tr := 0; tr < nt; tr++ {
			if !m.flat.ProducesOutput(tr) || !m.flat.Matches(tr, t) {
				continue
			}
			single, set := m.flat.OutputsFor(tr, t)
			if single == m.opts.Pivot || containsItem(set, m.opts.Pivot) {
				last = i
				break
			}
		}
	}
	return last
}

// prefixSupport sums the weights of the sequences present in the projected
// database (antimonotone pruning quantity).
func (m *dfsMiner) prefixSupport(proj []int32) int64 {
	var s int64
	for i := 0; i < len(proj); i += 2 + int(proj[i+1]) {
		s += m.db[proj[i]].Weight
	}
	return s
}

// completeSupport sums the weights of sequences for which the current prefix
// is a complete candidate subsequence: some snapshot can reach the end of the
// input in a final state without producing further output.
func (m *dfsMiner) completeSupport(proj []int32) int64 {
	var s int64
	sb := m.stateBits
	mask := int32(1)<<sb - 1
	for i := 0; i < len(proj); {
		seq := proj[i]
		n := int(proj[i+1])
		c := &m.cache[seq]
		for k := 0; k < n; k++ {
			cell := proj[i+2+k]
			pos := int(cell >> sb)
			q := uint(cell & mask)
			if c.finish[pos*m.words+int(q>>6)]&(1<<(q&63)) != 0 {
				s += m.db[seq].Weight
				break
			}
		}
		i += 2 + n
	}
	return s
}

// expandable reports whether output item w may grow the prefix.
func (m *dfsMiner) expandable(w dict.ItemID) bool {
	if m.useLimit {
		return w <= m.limit
	}
	return m.dict.IsFrequent(w, m.sigma) &&
		(m.opts.Pivot == dict.None || w <= m.opts.Pivot)
}

// markSnap records a simulation cell as visited for the current sequence and
// reports whether it was new.
func (m *dfsMiner) markSnap(cell int32) bool {
	sc := m.sc
	if sc.snapStamp != nil {
		if sc.snapStamp[cell] == sc.snapGen {
			return false
		}
		sc.snapStamp[cell] = sc.snapGen
		return true
	}
	if _, ok := sc.snapSeen[cell]; ok {
		return false
	}
	sc.snapSeen[cell] = struct{}{}
	return true
}

// expand recursively grows the prefix (sc.prefix[:depth]) by one output item
// at a time.
func (m *dfsMiner) expand(depth int, proj []int32) {
	sc := m.sc
	prefix := sc.prefix[:depth]

	// Report the prefix if it is a frequent (pivot) sequence.
	if depth > 0 {
		if m.opts.Pivot == dict.None || containsItem(prefix, m.opts.Pivot) {
			if freq := m.completeSupport(proj); freq >= m.sigma {
				m.out = append(m.out, Pattern{Items: append([]dict.ItemID(nil), prefix...), Freq: freq})
			}
		}
	}

	for len(sc.frames) <= depth {
		sc.frames = append(sc.frames, frame{})
	}
	fr := &sc.frames[depth]
	fr.order = fr.order[:0]
	used := int32(0)

	hasPivot := m.opts.Pivot != dict.None && containsItem(prefix, m.opts.Pivot)
	earlyStop := m.opts.EarlyStopping && m.opts.Pivot != dict.None && !hasPivot

	sc.itemGen++
	if sc.itemGen == 0 {
		clear(sc.itemStamp)
		sc.itemGen = 1
	}
	itemGen := sc.itemGen

	sb := m.stateBits
	mask := int32(1)<<sb - 1
	W := m.words

	for pi := 0; pi < len(proj); {
		seq := proj[pi]
		nsn := int(proj[pi+1])
		snaps := proj[pi+2 : pi+2+nsn]
		pi += 2 + nsn

		c := &m.cache[seq]
		T := m.db[seq].Items

		if sc.snapStamp != nil {
			sc.snapGen++
			if sc.snapGen == 0 {
				clear(sc.snapStamp)
				sc.snapGen = 1
			}
		} else {
			clear(sc.snapSeen)
		}
		sc.stack = sc.stack[:0]
		for _, cell := range snaps {
			if earlyStop && c.lastPivot >= 0 && cell>>sb > c.lastPivot {
				continue // this snapshot can no longer produce the pivot
			}
			if m.markSnap(cell) {
				sc.stack = append(sc.stack, cell)
			}
		}

		// Simulate: follow ε-output transitions, collect output targets as
		// packed (item, cell) keys.
		sc.keys = sc.keys[:0]
		for len(sc.stack) > 0 {
			cell := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			pos := int(cell >> sb)
			if pos >= len(T) {
				continue
			}
			q := int(cell & mask)
			t := T[pos]
			nextRow := c.accept[(pos+1)*W:]
			lo, hi := m.flat.TransitionsOf(q)
			for tr := lo; tr < hi; tr++ {
				to := m.flat.To(int(tr))
				if nextRow[uint32(to)>>6]&(1<<(uint32(to)&63)) == 0 {
					continue // target cannot reach acceptance
				}
				if !m.flat.Matches(int(tr), t) {
					continue
				}
				nextCell := int32(pos+1)<<sb | to
				single, set := m.flat.OutputsFor(int(tr), t)
				if single == dict.None && set == nil {
					if m.markSnap(nextCell) {
						sc.stack = append(sc.stack, nextCell)
					}
					continue
				}
				if single != dict.None {
					if m.expandable(single) {
						sc.keys = append(sc.keys, uint64(single)<<32|uint64(uint32(nextCell)))
					}
					continue
				}
				for _, w := range set {
					if m.expandable(w) {
						sc.keys = append(sc.keys, uint64(w)<<32|uint64(uint32(nextCell)))
					}
				}
			}
		}
		if len(sc.keys) == 0 {
			continue
		}

		// Sorting the packed keys both deduplicates (item, cell) targets and
		// hands each expansion its snapshots grouped per item.
		slices.Sort(sc.keys)
		prev := ^uint64(0)
		for _, k := range sc.keys {
			if k == prev {
				continue
			}
			prev = k
			w := dict.ItemID(k >> 32)
			var slot int32
			if sc.itemStamp[w] != itemGen {
				sc.itemStamp[w] = itemGen
				slot = used
				sc.itemSlot[w] = slot
				used++
				fr.order = append(fr.order, uint64(w)<<32|uint64(uint32(slot)))
				for len(fr.exps) <= int(slot) {
					fr.exps = append(fr.exps, expBuf{})
				}
				e := &fr.exps[slot]
				e.buf = e.buf[:0]
				e.lastSeq = -1
			} else {
				slot = sc.itemSlot[w]
			}
			e := &fr.exps[slot]
			if e.lastSeq != seq {
				e.lastSeq = seq
				e.countIdx = int32(len(e.buf) + 1)
				e.buf = append(e.buf, seq, 0)
			}
			e.buf = append(e.buf, int32(uint32(k)))
			e.buf[e.countIdx]++
		}
	}

	// Recurse on sufficiently supported expansions, in ascending item order
	// for deterministic output.
	slices.Sort(fr.order)
	for _, p := range fr.order {
		w := dict.ItemID(p >> 32)
		e := &fr.exps[uint32(p)]
		if m.prefixSupport(e.buf) < m.sigma {
			continue
		}
		sc.prefix = append(sc.prefix[:depth], w)
		m.expand(depth+1, e.buf)
	}
}

func containsItem(seq []dict.ItemID, w dict.ItemID) bool {
	for _, it := range seq {
		if it == w {
			return true
		}
	}
	return false
}
