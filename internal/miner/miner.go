// Package miner implements the sequential mining algorithms of the DESQ
// framework that the distributed algorithms of the paper build on:
//
//   - MineCount (DESQ-COUNT): enumerate the candidate subsequences of every
//     input sequence and count them. Simple, but exponential in the worst
//     case; used as the reference implementation and by the naive distributed
//     baselines.
//   - MineDFS (DESQ-DFS): pattern-growth mining with projected databases of
//     FST snapshots. This is the local miner used by D-SEQ (Sec. V-C) and the
//     sequential baseline of Table V. It supports pivot-restricted mining and
//     the early-stopping heuristic of the paper.
package miner

import (
	"sort"

	"seqmine/internal/dict"
	"seqmine/internal/fst"
)

// Pattern is one mined frequent sequence together with its frequency.
type Pattern struct {
	Items []dict.ItemID
	Freq  int64
}

// WeightedSequence is an input sequence with a multiplicity. Plain databases
// use weight 1; aggregated representations (D-CAND NFAs, deduplicated
// rewritten sequences) use larger weights.
type WeightedSequence struct {
	Items  []dict.ItemID
	Weight int64
}

// Weighted wraps a plain database into weight-1 sequences.
func Weighted(db [][]dict.ItemID) []WeightedSequence {
	out := make([]WeightedSequence, len(db))
	for i, s := range db {
		out[i] = WeightedSequence{Items: s, Weight: 1}
	}
	return out
}

// SortPatterns orders patterns by decreasing frequency and then
// lexicographically by items, in place.
func SortPatterns(ps []Pattern) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Freq != ps[j].Freq {
			return ps[i].Freq > ps[j].Freq
		}
		return lessSeq(ps[i].Items, ps[j].Items)
	})
}

// PatternsToMap converts patterns into a map keyed by the decoded
// space-separated item names. Mostly useful in tests.
func PatternsToMap(d *dict.Dictionary, ps []Pattern) map[string]int64 {
	out := make(map[string]int64, len(ps))
	for _, p := range ps {
		out[d.DecodeString(p.Items)] = p.Freq
	}
	return out
}

func lessSeq(a, b []dict.ItemID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// MineCount implements DESQ-COUNT: it enumerates Gσπ(T) for every input
// sequence, sums the weights per candidate, and reports the candidates whose
// support reaches sigma.
func MineCount(f *fst.FST, db []WeightedSequence, sigma int64) []Pattern {
	counts := make(map[string]int64)
	seqs := make(map[string][]dict.ItemID)
	for _, ws := range db {
		for _, cand := range f.EnumerateCandidates(ws.Items, sigma) {
			key := keyOf(cand)
			if _, ok := seqs[key]; !ok {
				seqs[key] = cand
			}
			counts[key] += ws.Weight
		}
	}
	var out []Pattern
	for key, freq := range counts {
		if freq >= sigma {
			out = append(out, Pattern{Items: seqs[key], Freq: freq})
		}
	}
	SortPatterns(out)
	return out
}

func keyOf(seq []dict.ItemID) string {
	buf := make([]byte, 0, len(seq)*4)
	for _, v := range seq {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Key returns a compact string key identifying a pattern, suitable for use as
// a map key when merging partial results across database partitions.
func Key(seq []dict.ItemID) string { return keyOf(seq) }

// SupportOf computes the exact support in db of every pattern present in the
// candidates set (keyed by Key). It is the counting phase of two-phase
// partitioned mining: phase one mines each partition with a scaled-down local
// threshold to obtain a candidate superset, phase two calls SupportOf per
// partition and sums the returned counts. sigma is used only for the global
// item-frequency pruning of candidate generation and must be the global
// threshold.
func SupportOf(f *fst.FST, db []WeightedSequence, sigma int64, candidates map[string]bool) map[string]int64 {
	counts := make(map[string]int64, len(candidates))
	for _, ws := range db {
		for _, cand := range f.EnumerateCandidates(ws.Items, sigma) {
			if k := keyOf(cand); candidates[k] {
				counts[k] += ws.Weight
			}
		}
	}
	return counts
}

// DFSOptions configures MineDFS.
type DFSOptions struct {
	// Pivot restricts mining to a partition of item-based partitioning: only
	// expansion items <= Pivot are considered and only patterns that contain
	// Pivot are reported. Zero disables the restriction.
	Pivot dict.ItemID
	// EarlyStopping enables the heuristic of Sec. V-C: input sequences are
	// not used to grow prefixes that do not yet contain the pivot item beyond
	// the last position at which the pivot can still be produced. It has no
	// effect when Pivot is zero.
	EarlyStopping bool
}

// MineDFS implements DESQ-DFS, the pattern-growth miner. It reports every
// subsequence S with fπ(S) >= sigma, subject to the pivot restriction in
// opts.
func MineDFS(f *fst.FST, db []WeightedSequence, sigma int64, opts DFSOptions) []Pattern {
	m := &dfsMiner{
		fst:   f,
		dict:  f.Dict(),
		db:    db,
		sigma: sigma,
		opts:  opts,
		cache: make([]*seqCache, len(db)),
	}
	return m.run()
}

// seqCache holds the per-sequence matrices used during mining.
type seqCache struct {
	accept     [][]bool // accepting-reachable coordinates (any outputs)
	finishable [][]bool // reachable end-of-input via ε-output transitions only
	lastPivot  int      // last position that can produce the pivot item (-1 if none)
}

type dfsMiner struct {
	fst   *fst.FST
	dict  *dict.Dictionary
	db    []WeightedSequence
	sigma int64
	opts  DFSOptions
	cache []*seqCache
	out   []Pattern
}

// snapshot is a position-state pair of the FST simulation of one sequence.
type snapshot struct {
	pos   int
	state int
}

// postings holds the snapshots of a single input sequence for the current
// prefix.
type postings struct {
	seq   int
	snaps []snapshot
}

func (m *dfsMiner) run() []Pattern {
	root := make([]postings, 0, len(m.db))
	for i := range m.db {
		if len(m.db[i].Items) == 0 {
			continue
		}
		c := m.cacheFor(i)
		if !c.accept[0][m.fst.Initial()] {
			continue // sequence has no accepting run at all
		}
		root = append(root, postings{seq: i, snaps: []snapshot{{pos: 0, state: m.fst.Initial()}}})
	}
	if m.prefixSupport(root) >= m.sigma {
		m.expand(nil, root)
	}
	SortPatterns(m.out)
	return m.out
}

func (m *dfsMiner) cacheFor(i int) *seqCache {
	if m.cache[i] != nil {
		return m.cache[i]
	}
	T := m.db[i].Items
	c := &seqCache{
		accept:     m.fst.AcceptMatrix(T),
		finishable: m.finishMatrix(T),
		lastPivot:  -1,
	}
	if m.opts.Pivot != dict.None {
		c.lastPivot = m.lastPivotPosition(T)
	}
	m.cache[i] = c
	return c
}

// finishMatrix computes which coordinates can reach the end of the input in a
// final state while producing no further output.
func (m *dfsMiner) finishMatrix(T []dict.ItemID) [][]bool {
	n := len(T)
	numStates := m.fst.NumStates()
	mat := make([][]bool, n+1)
	for i := range mat {
		mat[i] = make([]bool, numStates)
	}
	for q := 0; q < numStates; q++ {
		mat[n][q] = m.fst.IsFinal(q)
	}
	for i := n - 1; i >= 0; i-- {
		t := T[i]
		for q := 0; q < numStates; q++ {
			for _, tr := range m.fst.Transitions(q) {
				if tr.Label.ProducesOutput() {
					continue
				}
				if mat[i+1][tr.To] && tr.Label.Matches(m.dict, t) {
					mat[i][q] = true
					break
				}
			}
		}
	}
	return mat
}

// lastPivotPosition returns the last position of T at which some transition
// can output the pivot item (conservatively ignoring states), or -1.
func (m *dfsMiner) lastPivotPosition(T []dict.ItemID) int {
	last := -1
	for i, t := range T {
		for q := 0; q < m.fst.NumStates(); q++ {
			for _, tr := range m.fst.Transitions(q) {
				if !tr.Label.ProducesOutput() || !tr.Label.Matches(m.dict, t) {
					continue
				}
				for _, w := range tr.Label.Outputs(m.dict, t) {
					if w == m.opts.Pivot {
						last = i
						break
					}
				}
			}
		}
	}
	return last
}

// prefixSupport sums the weights of the sequences present in the projected
// database (antimonotone pruning quantity).
func (m *dfsMiner) prefixSupport(proj []postings) int64 {
	var s int64
	for _, p := range proj {
		s += m.db[p.seq].Weight
	}
	return s
}

// completeSupport sums the weights of sequences for which the current prefix
// is a complete candidate subsequence: some snapshot can reach the end of the
// input in a final state without producing further output.
func (m *dfsMiner) completeSupport(proj []postings) int64 {
	var s int64
	for _, p := range proj {
		c := m.cache[p.seq]
		for _, sn := range p.snaps {
			if c.finishable[sn.pos][sn.state] {
				s += m.db[p.seq].Weight
				break
			}
		}
	}
	return s
}

// expand recursively grows the prefix by one output item at a time.
func (m *dfsMiner) expand(prefix []dict.ItemID, proj []postings) {
	// Report the prefix if it is a frequent (pivot) sequence.
	if len(prefix) > 0 {
		if m.opts.Pivot == dict.None || containsItem(prefix, m.opts.Pivot) {
			if freq := m.completeSupport(proj); freq >= m.sigma {
				m.out = append(m.out, Pattern{Items: append([]dict.ItemID(nil), prefix...), Freq: freq})
			}
		}
	}

	// Compute expansions: output item -> projected database.
	type expState struct {
		proj    []postings
		lastSeq int
	}
	expansions := make(map[dict.ItemID]*expState)
	hasPivot := m.opts.Pivot != dict.None && containsItem(prefix, m.opts.Pivot)

	for _, p := range proj {
		c := m.cache[p.seq]
		T := m.db[p.seq].Items
		// Per-sequence deduplication of (item, pos, state) targets.
		type target struct {
			item  dict.ItemID
			pos   int
			state int
		}
		seenTarget := map[target]bool{}
		seenSnap := map[snapshot]bool{}
		stack := make([]snapshot, 0, len(p.snaps))
		for _, sn := range p.snaps {
			if m.opts.EarlyStopping && m.opts.Pivot != dict.None && !hasPivot &&
				c.lastPivot >= 0 && sn.pos > c.lastPivot {
				continue // this snapshot can no longer produce the pivot
			}
			if !seenSnap[sn] {
				seenSnap[sn] = true
				stack = append(stack, sn)
			}
		}
		for len(stack) > 0 {
			sn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if sn.pos >= len(T) {
				continue
			}
			t := T[sn.pos]
			for _, tr := range m.fst.Transitions(sn.state) {
				if !c.accept[sn.pos+1][tr.To] || !tr.Label.Matches(m.dict, t) {
					continue
				}
				if !tr.Label.ProducesOutput() {
					next := snapshot{pos: sn.pos + 1, state: tr.To}
					if !seenSnap[next] {
						seenSnap[next] = true
						stack = append(stack, next)
					}
					continue
				}
				for _, w := range tr.Label.Outputs(m.dict, t) {
					if !m.dict.IsFrequent(w, m.sigma) {
						continue
					}
					if m.opts.Pivot != dict.None && w > m.opts.Pivot {
						continue
					}
					tg := target{item: w, pos: sn.pos + 1, state: tr.To}
					if seenTarget[tg] {
						continue
					}
					seenTarget[tg] = true
					e := expansions[w]
					if e == nil {
						e = &expState{lastSeq: -1}
						expansions[w] = e
					}
					if e.lastSeq != p.seq {
						e.proj = append(e.proj, postings{seq: p.seq})
						e.lastSeq = p.seq
					}
					last := &e.proj[len(e.proj)-1]
					last.snaps = append(last.snaps, snapshot{pos: sn.pos + 1, state: tr.To})
				}
			}
		}
	}

	// Recurse on sufficiently supported expansions, in ascending item order
	// for deterministic output.
	items := make([]dict.ItemID, 0, len(expansions))
	for w := range expansions {
		items = append(items, w)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, w := range items {
		e := expansions[w]
		if m.prefixSupport(e.proj) < m.sigma {
			continue
		}
		m.expand(append(prefix, w), e.proj)
	}
}

func containsItem(seq []dict.ItemID, w dict.ItemID) bool {
	for _, it := range seq {
		if it == w {
			return true
		}
	}
	return false
}
