package experiments_test

import (
	"strings"
	"testing"

	"seqmine/internal/experiments"
)

// tinyScale keeps the experiment tests fast.
func tinyScale() experiments.Scale {
	return experiments.Scale{NYTSentences: 400, AmazonCustomers: 300, ClueWebSentences: 400, Workers: 2, Seed: 1}
}

func generate(t *testing.T) *experiments.Datasets {
	t.Helper()
	ds, err := experiments.Generate(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestConstraintDefinitions(t *testing.T) {
	s := tinyScale()
	ds := generate(t)
	all := append(experiments.NYTConstraints(s), experiments.AmazonConstraints(s)...)
	all = append(all, experiments.TraditionalConstraints(s)...)
	if len(all) != 13 {
		t.Fatalf("expected 13 constraints (N1-N5, A1-A4, T3x2, T2, T1), got %d", len(all))
	}
	for _, c := range all {
		if c.Sigma < 2 {
			t.Errorf("%s: sigma %d too small", c.Name, c.Sigma)
		}
		if _, err := c.Compile(ds); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.DB(ds) == nil {
			t.Errorf("%s: no dataset", c.Name)
		}
	}
}

func TestExprBuilders(t *testing.T) {
	if got := experiments.T1Expr(5); got != "[.*(.)]{1,5}.*" {
		t.Errorf("T1Expr = %q", got)
	}
	if got := experiments.T2Expr(1, 5); got != ".*(.)[.{0,1}(.)]{1,4}.*" {
		t.Errorf("T2Expr = %q", got)
	}
	if got := experiments.T3Expr(2, 6); got != ".*(.^)[.{0,2}(.^)]{1,5}.*" {
		t.Errorf("T3Expr = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := experiments.Table{Title: "demo", Header: []string{"a", "bb"}}
	tab.Add("1", "2")
	tab.Note("a note")
	text := tab.String()
	if !strings.Contains(text, "demo") || !strings.Contains(text, "note: a note") {
		t.Errorf("text rendering missing parts:\n%s", text)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("markdown rendering missing parts:\n%s", md)
	}
}

func TestTableII(t *testing.T) {
	ds := generate(t)
	tab := experiments.TableII(ds)
	if len(tab.Rows) != 8 {
		t.Fatalf("Table II should have 8 rows, got %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "400" {
		t.Errorf("NYT sequence count cell = %q, want 400", tab.Rows[0][1])
	}
}

func TestTableIIIAndIV(t *testing.T) {
	ds := generate(t)
	t3, err := experiments.TableIII(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 13 {
		t.Errorf("Table III should have one row per constraint, got %d", len(t3.Rows))
	}
	t4, err := experiments.TableIV(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 13 {
		t.Errorf("Table IV should have one row per constraint, got %d", len(t4.Rows))
	}
}

func TestFig9(t *testing.T) {
	ds := generate(t)
	a, err := experiments.Fig9a(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 5 {
		t.Errorf("Fig 9a should have 5 rows, got %d", len(a.Rows))
	}
	b, err := experiments.Fig9b(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 4 {
		t.Errorf("Fig 9b should have 4 rows, got %d", len(b.Rows))
	}
	c, err := experiments.Fig9c(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rows) != 2 {
		t.Errorf("Fig 9c should have 2 rows, got %d", len(c.Rows))
	}
}

func TestFig10(t *testing.T) {
	ds := generate(t)
	a, err := experiments.Fig10a(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Errorf("Fig 10a should have 3 rows, got %d", len(a.Rows))
	}
	b, err := experiments.Fig10b(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 3 {
		t.Errorf("Fig 10b should have 3 rows, got %d", len(b.Rows))
	}
}

func TestFig11TableVFig12Fig13(t *testing.T) {
	ds := generate(t)
	f11a, err := experiments.Fig11a(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11a.Rows) != 4 {
		t.Errorf("Fig 11a should have 4 rows, got %d", len(f11a.Rows))
	}
	f11b, err := experiments.Fig11b(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11b.Rows) != 3 {
		t.Errorf("Fig 11b should have 3 rows, got %d", len(f11b.Rows))
	}
	f11c, err := experiments.Fig11c(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11c.Rows) != 4 {
		t.Errorf("Fig 11c should have 4 rows, got %d", len(f11c.Rows))
	}
	tv, err := experiments.TableV(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(tv.Rows) != 5 {
		t.Errorf("Table V should have 5 rows, got %d", len(tv.Rows))
	}
	f12, err := experiments.Fig12(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f12.Rows) != 6 {
		t.Errorf("Fig 12 should have 6 rows, got %d", len(f12.Rows))
	}
	f13, err := experiments.Fig13(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(f13.Rows) != 4 {
		t.Errorf("Fig 13 should have 4 rows, got %d", len(f13.Rows))
	}
}
