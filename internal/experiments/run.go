package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"seqmine/internal/baseline/lash"
	"seqmine/internal/baseline/prefixspan"
	"seqmine/internal/dcand"
	"seqmine/internal/dict"
	"seqmine/internal/dseq"
	"seqmine/internal/fst"
	"seqmine/internal/mapreduce"
	"seqmine/internal/miner"
	"seqmine/internal/naive"
	"seqmine/internal/seqdb"
)

// runResult captures one algorithm execution.
type runResult struct {
	patterns []miner.Pattern
	metrics  mapreduce.Metrics
	elapsed  time.Duration
	skipped  string // non-empty when the run was skipped (paper: OOM)
}

func (r runResult) timeCell() string {
	if r.skipped != "" {
		return "n/a (" + r.skipped + ")"
	}
	return formatDuration(r.elapsed)
}

// algoSpec names an algorithm configuration for the comparison figures.
type algoSpec struct {
	name string
	run  func(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics)
	// skipLoose marks algorithms that are skipped for loose constraints
	// (candidate explosion; the paper reports OOM for these cells).
	skipLoose bool
}

func standardAlgos() []algoSpec {
	return []algoSpec{
		{name: "Naive", skipLoose: true,
			run: func(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
				return naive.Mine(f, db, sigma, naive.Naive, naive.DefaultOptions(), cfg)
			}},
		{name: "SemiNaive", skipLoose: true,
			run: func(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
				return naive.Mine(f, db, sigma, naive.SemiNaive, naive.DefaultOptions(), cfg)
			}},
		{name: "D-SEQ",
			run: func(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
				return dseq.Mine(f, db, sigma, dseq.DefaultOptions(), cfg)
			}},
		{name: "D-CAND",
			run: func(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config) ([]miner.Pattern, mapreduce.Metrics) {
				return dcand.Mine(f, db, sigma, dcand.DefaultOptions(), cfg)
			}},
	}
}

func (s algoSpec) exec(f *fst.FST, db [][]dict.ItemID, sigma int64, cfg mapreduce.Config, loose bool) runResult {
	if loose && s.skipLoose {
		return runResult{skipped: "candidate explosion"}
	}
	start := time.Now()
	patterns, metrics := s.run(f, db, sigma, cfg)
	return runResult{patterns: patterns, metrics: metrics, elapsed: time.Since(start)}
}

func (ds *Datasets) config() mapreduce.Config {
	return mapreduce.Config{MapWorkers: ds.Scale.Workers, ReduceWorkers: ds.Scale.Workers}
}

// ---------------------------------------------------------------------------
// Table II: dataset characteristics
// ---------------------------------------------------------------------------

// TableII reports the dataset and hierarchy characteristics of the synthetic
// datasets (paper Table II).
func TableII(ds *Datasets) Table {
	t := Table{
		Title:  "Table II: dataset and hierarchy characteristics (synthetic, scaled down)",
		Header: []string{"", "NYT-like", "AMZN-like", "AMZN-F-like", "CW-like"},
	}
	stats := []seqdb.Stats{ds.NYT.Stats(), ds.AMZN.Stats(), ds.AMZNF.Stats(), ds.CW.Stats()}
	row := func(label string, f func(seqdb.Stats) string) {
		cells := []string{label}
		for _, s := range stats {
			cells = append(cells, f(s))
		}
		t.Add(cells...)
	}
	row("Total sequences", func(s seqdb.Stats) string { return fmt.Sprint(s.NumSequences) })
	row("Total items", func(s seqdb.Stats) string { return fmt.Sprint(s.TotalItems) })
	row("Unique items", func(s seqdb.Stats) string { return fmt.Sprint(s.UniqueItems) })
	row("Max. sequence length", func(s seqdb.Stats) string { return fmt.Sprint(s.MaxLength) })
	row("Mean sequence length", func(s seqdb.Stats) string { return fmt.Sprintf("%.1f", s.MeanLength) })
	row("Hierarchy items", func(s seqdb.Stats) string { return fmt.Sprint(s.HierarchyItems) })
	row("Max. ancestors", func(s seqdb.Stats) string { return fmt.Sprint(s.MaxAncestors) })
	row("Mean ancestors", func(s seqdb.Stats) string { return fmt.Sprintf("%.1f", s.MeanAncestors) })
	return t
}

// ---------------------------------------------------------------------------
// Table III: example constraints and found frequent sequences
// ---------------------------------------------------------------------------

// TableIII mines every N/A/T constraint with D-SEQ and reports the number of
// frequent sequences plus a few examples (paper Table III).
func TableIII(ds *Datasets) (Table, error) {
	t := Table{
		Title:  "Table III: example subsequence constraints with found frequent sequences",
		Header: []string{"Constraint", "Dataset", "Pattern expression", "#Frequent", "Example frequent sequences (support)"},
	}
	constraints := append(NYTConstraints(ds.Scale), AmazonConstraints(ds.Scale)...)
	constraints = append(constraints, TraditionalConstraints(ds.Scale)...)
	cfg := ds.config()
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, fmt.Errorf("%s: %w", c.Name, err)
		}
		patterns, _ := dseq.Mine(f, db.Sequences, c.Sigma, dseq.DefaultOptions(), cfg)
		t.Add(c.Name, c.Dataset, c.Expression, fmt.Sprint(len(patterns)), examplePatterns(db.Dict, patterns, 3))
	}
	return t, nil
}

func examplePatterns(d *dict.Dictionary, ps []miner.Pattern, n int) string {
	parts := make([]string, 0, n)
	for i, p := range ps {
		if i >= n {
			break
		}
		parts = append(parts, fmt.Sprintf("'%s' (%d)", d.DecodeString(p.Items), p.Freq))
	}
	if len(parts) == 0 {
		return "-"
	}
	return joinCells(parts)
}

func joinCells(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// ---------------------------------------------------------------------------
// Table IV: candidate subsequences per input sequence (CSPI)
// ---------------------------------------------------------------------------

// TableIV reports the candidate statistics of each constraint (paper Table
// IV): fraction of matched sequences, total number of candidates and
// mean/median candidates per matched sequence. Values are computed on a
// sample of the input sequences with a per-sequence enumeration cap.
func TableIV(ds *Datasets) (Table, error) {
	t := Table{
		Title:  "Table IV: statistics on candidate subsequences (Gσπ, sampled)",
		Header: []string{"Constraint", "Dataset", "matched seqs (%)", "#cand. seqs", "CSPI mean", "CSPI median"},
	}
	const sampleSize = 400
	const perSeqCap = 20000
	constraints := append(NYTConstraints(ds.Scale), AmazonConstraints(ds.Scale)...)
	constraints = append(constraints, TraditionalConstraints(ds.Scale)...)
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, fmt.Errorf("%s: %w", c.Name, err)
		}
		step := 1
		if len(db.Sequences) > sampleSize {
			step = len(db.Sequences) / sampleSize
		}
		var counts []int
		matched := 0
		sampled := 0
		truncatedAny := false
		for i := 0; i < len(db.Sequences); i += step {
			T := db.Sequences[i]
			sampled++
			n, truncated := f.CountCandidatesUpTo(T, c.Sigma, perSeqCap)
			truncatedAny = truncatedAny || truncated
			if n > 0 {
				matched++
				counts = append(counts, n)
			}
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		mean, median := 0.0, 0
		if len(counts) > 0 {
			mean = float64(total) / float64(len(counts))
			sort.Ints(counts)
			median = counts[len(counts)/2]
		}
		scaledTotal := float64(total) * float64(len(db.Sequences)) / float64(sampled)
		t.Add(c.Name, c.Dataset,
			fmt.Sprintf("%.1f", 100*float64(matched)/float64(sampled)),
			fmt.Sprintf("%.0f", scaledTotal),
			fmt.Sprintf("%.1f", mean),
			fmt.Sprint(median))
		if truncatedAny {
			t.Note("%s: per-sequence candidate counts capped at %d (estimate, like the sampled row of the paper)", c.Name, perSeqCap)
		}
	}
	t.Note("computed on every %d-th sequence", 1)
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 9: flexible constraints (runtimes and shuffle sizes)
// ---------------------------------------------------------------------------

// Fig9a compares Naive, SemiNaive, D-SEQ and D-CAND on the NYT constraints
// (paper Fig. 9a).
func Fig9a(ds *Datasets) (Table, error) {
	return figure9(ds, "Fig. 9a: total time on NYT-like (flexible constraints)", NYTConstraints(ds.Scale))
}

// Fig9b compares the algorithms on the AMZN constraints (paper Fig. 9b).
func Fig9b(ds *Datasets) (Table, error) {
	return figure9(ds, "Fig. 9b: total time on AMZN-like (flexible constraints)", AmazonConstraints(ds.Scale))
}

func figure9(ds *Datasets, title string, constraints []Constraint) (Table, error) {
	algos := standardAlgos()
	t := Table{Title: title, Header: []string{"Constraint"}}
	for _, a := range algos {
		t.Header = append(t.Header, a.name)
	}
	t.Header = append(t.Header, "#Frequent")
	cfg := ds.config()
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, fmt.Errorf("%s: %w", c.Name, err)
		}
		row := []string{c.Name}
		numFrequent := -1
		for _, a := range algos {
			r := a.exec(f, db.Sequences, c.Sigma, cfg, c.Loose)
			row = append(row, r.timeCell())
			if r.skipped == "" {
				if numFrequent >= 0 && numFrequent != len(r.patterns) {
					return t, fmt.Errorf("%s: algorithms disagree (%d vs %d frequent sequences)", c.Name, numFrequent, len(r.patterns))
				}
				numFrequent = len(r.patterns)
			}
		}
		row = append(row, fmt.Sprint(numFrequent))
		t.Add(row...)
	}
	return t, nil
}

// Fig9c reports the shuffle sizes of the four algorithms for A1 and A4
// (paper Fig. 9c).
func Fig9c(ds *Datasets) (Table, error) {
	algos := standardAlgos()
	t := Table{Title: "Fig. 9c: shuffle size on AMZN-like", Header: []string{"Constraint"}}
	for _, a := range algos {
		t.Header = append(t.Header, a.name)
	}
	cfg := ds.config()
	amazon := AmazonConstraints(ds.Scale)
	selected := []Constraint{amazon[0], amazon[3]} // A1 and A4
	for _, c := range selected {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, err
		}
		row := []string{c.Name}
		for _, a := range algos {
			r := a.exec(f, db.Sequences, c.Sigma, cfg, c.Loose)
			if r.skipped != "" {
				row = append(row, "n/a")
				continue
			}
			row = append(row, formatBytes(r.metrics.ShuffleBytes))
		}
		t.Add(row...)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 10: detailed analysis (ablations)
// ---------------------------------------------------------------------------

// Fig10a measures the effect of the position-state grid, sequence rewriting
// and early stopping in D-SEQ (paper Fig. 10a). The horizontal line of the
// paper's bars (start of the mine stage) corresponds to the map-time column.
func Fig10a(ds *Datasets) (Table, error) {
	variants := []struct {
		name string
		opts dseq.Options
	}{
		{"no stop, no rewrites, no grid", dseq.Options{}},
		{"no stop, no rewrites", dseq.Options{UseGrid: true}},
		{"no stop", dseq.Options{UseGrid: true, Rewrite: true}},
		{"D-SEQ (all)", dseq.DefaultOptions()},
	}
	t := Table{Title: "Fig. 10a: D-SEQ detailed analysis (total time / map time)",
		Header: []string{"Constraint"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	cfg := ds.config()
	amazon := AmazonConstraints(ds.Scale)
	nyt := NYTConstraints(ds.Scale)
	trad := TraditionalConstraints(ds.Scale)
	constraints := []Constraint{amazon[0], nyt[4], trad[0]} // A1, N5, T3
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, err
		}
		row := []string{c.Name}
		var baseline int
		for i, v := range variants {
			start := time.Now()
			patterns, metrics := dseq.Mine(f, db.Sequences, c.Sigma, v.opts, cfg)
			elapsed := time.Since(start)
			if i == 0 {
				baseline = len(patterns)
			} else if len(patterns) != baseline {
				return t, fmt.Errorf("%s: variant %q changed the result", c.Name, v.name)
			}
			row = append(row, fmt.Sprintf("%s / %s", formatDuration(elapsed), formatDuration(metrics.MapTime)))
		}
		t.Add(row...)
	}
	return t, nil
}

// Fig10b measures the effect of NFA minimization and aggregation in D-CAND
// (paper Fig. 10b).
func Fig10b(ds *Datasets) (Table, error) {
	variants := []struct {
		name string
		opts dcand.Options
	}{
		{"tries, no agg", dcand.Options{}},
		{"tries", dcand.Options{Aggregate: true}},
		{"D-CAND (all)", dcand.DefaultOptions()},
	}
	t := Table{Title: "Fig. 10b: D-CAND detailed analysis (total time / shuffle size)",
		Header: []string{"Constraint"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	cfg := ds.config()
	amazon := AmazonConstraints(ds.Scale)
	nyt := NYTConstraints(ds.Scale)
	trad := TraditionalConstraints(ds.Scale)
	constraints := []Constraint{amazon[0], nyt[3], trad[0]} // A1, N4, T3
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, err
		}
		row := []string{c.Name}
		var baseline int
		for i, v := range variants {
			start := time.Now()
			patterns, metrics := dcand.Mine(f, db.Sequences, c.Sigma, v.opts, cfg)
			elapsed := time.Since(start)
			if i == 0 {
				baseline = len(patterns)
			} else if len(patterns) != baseline {
				return t, fmt.Errorf("%s: variant %q changed the result", c.Name, v.name)
			}
			row = append(row, fmt.Sprintf("%s / %s", formatDuration(elapsed), formatBytes(metrics.ShuffleBytes)))
		}
		t.Add(row...)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 11: scalability
// ---------------------------------------------------------------------------

// scalabilityRun executes D-SEQ and D-CAND once for a scalability setting.
func scalabilityRun(f *fst.FST, seqs [][]dict.ItemID, sigma int64, workers int) (time.Duration, time.Duration) {
	cfg := mapreduce.Config{MapWorkers: workers, ReduceWorkers: workers}
	s1 := time.Now()
	dseq.Mine(f, seqs, sigma, dseq.DefaultOptions(), cfg)
	d1 := time.Since(s1)
	s2 := time.Now()
	dcand.Mine(f, seqs, sigma, dcand.DefaultOptions(), cfg)
	d2 := time.Since(s2)
	return d1, d2
}

// scalabilityBase returns the constraint, FST and database used by the
// scalability experiments (T3 on AMZN-F-like, as in the paper).
func scalabilityBase(ds *Datasets) (Constraint, *fst.FST, *seqdb.Database, error) {
	base := TraditionalConstraints(ds.Scale)[0]
	f, err := base.Compile(ds)
	if err != nil {
		return base, nil, nil, err
	}
	return base, f, base.DB(ds), nil
}

// Fig11a reports data scalability: 25/50/75/100% of the sequences with
// proportional sigma and a fixed number of workers (paper Fig. 11a).
func Fig11a(ds *Datasets) (Table, error) {
	base, f, db, err := scalabilityBase(ds)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Fig. 11a: data scalability, " + base.Name + " on AMZN-F-like (" + fmt.Sprint(ds.Scale.Workers) + " workers)",
		Header: []string{"% of data", "sigma", "D-SEQ", "D-CAND"},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		sample := db.Sample(frac, 42)
		sigma := int64(float64(base.Sigma) * frac)
		if sigma < 2 {
			sigma = 2
		}
		d1, d2 := scalabilityRun(f, sample.Sequences, sigma, ds.Scale.Workers)
		t.Add(fmt.Sprintf("%.0f%%", frac*100), fmt.Sprint(sigma), formatDuration(d1), formatDuration(d2))
	}
	return t, nil
}

// Fig11b reports strong scalability: the full dataset with 2, 4 and 8 workers
// (paper Fig. 11b).
func Fig11b(ds *Datasets) (Table, error) {
	base, f, db, err := scalabilityBase(ds)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Fig. 11b: strong scalability, " + base.Name + " on AMZN-F-like (100% of data)",
		Header: []string{"Workers", "D-SEQ", "D-CAND"},
	}
	for _, workers := range []int{2, 4, 8} {
		d1, d2 := scalabilityRun(f, db.Sequences, base.Sigma, workers)
		t.Add(fmt.Sprint(workers), formatDuration(d1), formatDuration(d2))
	}
	return t, nil
}

// Fig11c reports weak scalability: the data grows proportionally with the
// number of workers (paper Fig. 11c).
func Fig11c(ds *Datasets) (Table, error) {
	base, f, db, err := scalabilityBase(ds)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:  "Fig. 11c: weak scalability, " + base.Name + " on AMZN-F-like",
		Header: []string{"Workers (% of data)", "sigma", "D-SEQ", "D-CAND"},
	}
	weak := []struct {
		workers int
		frac    float64
	}{{2, 0.25}, {4, 0.5}, {6, 0.75}, {8, 1.0}}
	for _, w := range weak {
		sample := db.Sample(w.frac, 42)
		sigma := int64(float64(base.Sigma) * w.frac)
		if sigma < 2 {
			sigma = 2
		}
		d1, d2 := scalabilityRun(f, sample.Sequences, sigma, w.workers)
		t.Add(fmt.Sprintf("%d (%.0f%%)", w.workers, w.frac*100), fmt.Sprint(sigma), formatDuration(d1), formatDuration(d2))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Table V: speed-up over sequential execution
// ---------------------------------------------------------------------------

// TableV compares sequential DESQ-DFS with distributed D-SEQ and D-CAND
// (paper Table V).
func TableV(ds *Datasets) (Table, error) {
	t := Table{
		Title:  "Table V: speed-up over sequential execution (DESQ-DFS on 1 worker)",
		Header: []string{"Constraint", "Dataset", "DESQ-DFS", "D-SEQ", "D-CAND"},
	}
	nyt := NYTConstraints(ds.Scale)
	trad := TraditionalConstraints(ds.Scale)
	constraints := []Constraint{nyt[3], nyt[4], trad[0], trad[1], trad[2]} // N4, N5, T3 low/high, T2
	cfg := ds.config()
	for _, c := range constraints {
		db := c.DB(ds)
		f, err := c.Compile(ds)
		if err != nil {
			return t, err
		}
		s0 := time.Now()
		seq := miner.MineDFS(f, miner.Weighted(db.Sequences), c.Sigma, miner.DFSOptions{})
		d0 := time.Since(s0)

		s1 := time.Now()
		p1, _ := dseq.Mine(f, db.Sequences, c.Sigma, dseq.DefaultOptions(), cfg)
		d1 := time.Since(s1)

		s2 := time.Now()
		p2, _ := dcand.Mine(f, db.Sequences, c.Sigma, dcand.DefaultOptions(), cfg)
		d2 := time.Since(s2)

		if len(seq) != len(p1) || len(seq) != len(p2) {
			return t, fmt.Errorf("%s: result mismatch (seq %d, dseq %d, dcand %d)", c.Name, len(seq), len(p1), len(p2))
		}
		speedup := func(d time.Duration) string {
			if d == 0 {
				return "-"
			}
			return fmt.Sprintf("%s (%.1fx)", formatDuration(d), float64(d0)/float64(d))
		}
		t.Add(c.Name, c.Dataset, formatDuration(d0), speedup(d1), speedup(d2))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 12: LASH setting
// ---------------------------------------------------------------------------

// Fig12 compares the specialized LASH-setting miner with D-SEQ and D-CAND on
// max-gap/max-length/hierarchy constraints (paper Fig. 12a/b). The last
// column reports the generalization overhead of D-SEQ over the specialized
// algorithm.
func Fig12(ds *Datasets) (Table, error) {
	t := Table{
		Title:  "Fig. 12: LASH setting (generalization overhead of the flexible miners)",
		Header: []string{"Constraint", "Dataset", "LASH", "D-SEQ", "D-CAND", "D-SEQ/LASH"},
	}
	cfg := ds.config()
	fa := float64(ds.Scale.AmazonCustomers) / 6000.0
	fc := float64(ds.Scale.ClueWebSentences) / 10000.0
	sig := func(base, f float64) int64 {
		v := int64(base * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	cases := []struct {
		name      string
		db        *seqdb.Database
		dbName    string
		gamma     int
		lambda    int
		hierarchy bool
		sigma     int64
	}{
		{"T3(γ=1,λ=5)", ds.AMZNF, "AMZN-F", 1, 5, true, sig(25, fa)},
		{"T3(γ=1,λ=5) low σ", ds.AMZNF, "AMZN-F", 1, 5, true, sig(10, fa)},
		{"T3(γ=2,λ=5)", ds.AMZNF, "AMZN-F", 2, 5, true, sig(25, fa)},
		{"T3(γ=1,λ=6)", ds.AMZNF, "AMZN-F", 1, 6, true, sig(25, fa)},
		{"T2(γ=0,λ=5)", ds.CW, "CW", 0, 5, false, sig(20, fc)},
		{"T2(γ=0,λ=5) low σ", ds.CW, "CW", 0, 5, false, sig(10, fc)},
	}
	for _, c := range cases {
		var expr string
		if c.hierarchy {
			expr = T3Expr(c.gamma, c.lambda)
		} else {
			expr = T2Expr(c.gamma, c.lambda)
		}
		f, err := fst.Compile(expr, c.db.Dict)
		if err != nil {
			return t, err
		}
		constraint := lash.Constraint{MaxGap: c.gamma, MaxLength: c.lambda, MinLength: 2, Hierarchy: c.hierarchy}

		s0 := time.Now()
		p0, _ := lash.Mine(c.db.Dict, c.db.Sequences, c.sigma, constraint, cfg)
		d0 := time.Since(s0)

		s1 := time.Now()
		p1, _ := dseq.Mine(f, c.db.Sequences, c.sigma, dseq.DefaultOptions(), cfg)
		d1 := time.Since(s1)

		s2 := time.Now()
		p2, _ := dcand.Mine(f, c.db.Sequences, c.sigma, dcand.DefaultOptions(), cfg)
		d2 := time.Since(s2)

		if len(p0) != len(p1) || len(p0) != len(p2) {
			return t, fmt.Errorf("%s: result mismatch (lash %d, dseq %d, dcand %d)", c.name, len(p0), len(p1), len(p2))
		}
		overhead := "-"
		if d0 > 0 {
			overhead = fmt.Sprintf("%.1fx", float64(d1)/float64(d0))
		}
		t.Add(c.name+fmt.Sprintf(" σ=%d", c.sigma), c.dbName,
			formatDuration(d0), formatDuration(d1), formatDuration(d2), overhead)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Fig. 13: MLlib setting
// ---------------------------------------------------------------------------

// Fig13 compares PrefixSpan (the MLlib setting: maximum length, arbitrary
// gaps, no hierarchy) with the LASH-setting miner, D-SEQ and D-CAND over a
// sweep of minimum supports (paper Fig. 13). D-CAND is skipped: with
// arbitrary gaps the number of accepting runs explodes, which is the
// out-of-memory condition reported in the paper.
func Fig13(ds *Datasets) (Table, error) {
	t := Table{
		Title:  "Fig. 13: MLlib setting, T1(σ,5) on AMZN-like without hierarchy",
		Header: []string{"sigma", "MLlib (PrefixSpan)", "LASH", "D-SEQ", "D-CAND", "#Frequent"},
	}
	db := ds.AMZN
	lambda := 5
	f, err := fst.Compile(T1Expr(lambda), db.Dict)
	if err != nil {
		return t, err
	}
	cfg := ds.config()
	// Minimum supports as fractions of the number of customers (the paper
	// sweeps 6400 down to 25 on 21M sequences; the lowest settings are
	// intentionally omitted — they lead to pattern explosion for every
	// algorithm, which is the ">24h" region of the paper's figure).
	sigmas := []int64{}
	for _, frac := range []float64{0.10, 0.067, 0.05, 0.033} {
		v := int64(frac * float64(ds.Scale.AmazonCustomers))
		if v < 3 {
			v = 3
		}
		sigmas = append(sigmas, v)
	}
	constraint := lash.Constraint{MaxGap: 1 << 20, MaxLength: lambda, MinLength: 1, Hierarchy: false}
	for _, sigma := range sigmas {
		s0 := time.Now()
		p0 := prefixspan.Mine(db.Dict, db.Sequences, sigma, prefixspan.Options{MaxLength: lambda, Workers: ds.Scale.Workers})
		d0 := time.Since(s0)

		s1 := time.Now()
		p1, _ := lash.Mine(db.Dict, db.Sequences, sigma, constraint, cfg)
		d1 := time.Since(s1)

		s2 := time.Now()
		p2, _ := dseq.Mine(f, db.Sequences, sigma, dseq.DefaultOptions(), cfg)
		d2 := time.Since(s2)

		if len(p0) != len(p1) || len(p0) != len(p2) {
			return t, fmt.Errorf("sigma %d: result mismatch (prefixspan %d, lash %d, dseq %d)", sigma, len(p0), len(p1), len(p2))
		}
		t.Add(fmt.Sprint(sigma), formatDuration(d0), formatDuration(d1), formatDuration(d2),
			"n/a (run explosion)", fmt.Sprint(len(p0)))
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// RunAll
// ---------------------------------------------------------------------------

// RunAll executes the full experiment suite at the given scale and writes the
// tables to w (markdown when markdown is true, aligned text otherwise).
func RunAll(s Scale, w io.Writer, markdown bool) error {
	start := time.Now()
	ds, err := Generate(s)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Experiment suite at scale %+v (dataset generation: %s)\n\n", s, formatDuration(time.Since(start)))

	emit := func(t Table, err error) error {
		if err != nil {
			return err
		}
		if markdown {
			fmt.Fprintln(w, t.Markdown())
		} else {
			fmt.Fprintln(w, t.String())
		}
		return nil
	}
	if err := emit(TableII(ds), nil); err != nil {
		return err
	}
	if err := emit(TableIII(ds)); err != nil {
		return err
	}
	if err := emit(TableIV(ds)); err != nil {
		return err
	}
	if err := emit(Fig9a(ds)); err != nil {
		return err
	}
	if err := emit(Fig9b(ds)); err != nil {
		return err
	}
	if err := emit(Fig9c(ds)); err != nil {
		return err
	}
	if err := emit(Fig10a(ds)); err != nil {
		return err
	}
	if err := emit(Fig10b(ds)); err != nil {
		return err
	}
	if err := emit(Fig11a(ds)); err != nil {
		return err
	}
	if err := emit(Fig11b(ds)); err != nil {
		return err
	}
	if err := emit(Fig11c(ds)); err != nil {
		return err
	}
	if err := emit(TableV(ds)); err != nil {
		return err
	}
	if err := emit(Fig12(ds)); err != nil {
		return err
	}
	if err := emit(Fig13(ds)); err != nil {
		return err
	}
	fmt.Fprintf(w, "Total experiment time: %s\n", formatDuration(time.Since(start)))
	return nil
}
