// Package experiments contains the harness that regenerates every table and
// figure of the paper's evaluation (Sec. VII) on the synthetic datasets of
// the datagen package. Each experiment returns a Table whose rows mirror the
// series reported in the paper; cmd/experiments and the benchmarks in
// bench_test.go are thin wrappers around these functions.
//
// Absolute numbers differ from the paper (single machine, scaled-down
// synthetic data); the harness targets the qualitative shape: which
// algorithm wins, by roughly what factor, and where the crossovers are.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"seqmine/internal/datagen"
	"seqmine/internal/fst"
	"seqmine/internal/seqdb"
)

// Scale controls dataset sizes and parallelism of the experiment suite.
type Scale struct {
	NYTSentences     int
	AmazonCustomers  int
	ClueWebSentences int
	Workers          int
	// Seed drives dataset generation.
	Seed int64
}

// DefaultScale is the scale used by cmd/experiments and the benchmarks: large
// enough that algorithmic differences are visible, small enough to run on a
// laptop in minutes.
func DefaultScale() Scale {
	return Scale{NYTSentences: 6000, AmazonCustomers: 4000, ClueWebSentences: 6000, Workers: 8, Seed: 1}
}

// SmallScale is used by the test suite.
func SmallScale() Scale {
	return Scale{NYTSentences: 1200, AmazonCustomers: 800, ClueWebSentences: 1200, Workers: 4, Seed: 1}
}

// Datasets bundles the generated databases.
type Datasets struct {
	Scale Scale
	NYT   *seqdb.Database
	AMZN  *seqdb.Database
	AMZNF *seqdb.Database
	CW    *seqdb.Database
}

// Generate builds all four datasets deterministically.
func Generate(s Scale) (*Datasets, error) {
	nyt, err := datagen.NYT(datagen.NYTConfig{NumSentences: s.NYTSentences, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	amzn, err := datagen.Amazon(datagen.AmazonConfig{NumCustomers: s.AmazonCustomers, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	amznf, err := datagen.Amazon(datagen.AmazonConfig{NumCustomers: s.AmazonCustomers, Seed: s.Seed, Forest: true})
	if err != nil {
		return nil, err
	}
	cw, err := datagen.ClueWeb(datagen.ClueWebConfig{NumSentences: s.ClueWebSentences, Seed: s.Seed})
	if err != nil {
		return nil, err
	}
	return &Datasets{Scale: s, NYT: nyt, AMZN: amzn, AMZNF: amznf, CW: cw}, nil
}

// Constraint is a named subsequence constraint of Table III, bound to one of
// the datasets and scaled to a minimum support that is meaningful on the
// synthetic data.
type Constraint struct {
	// Name follows the paper's notation, e.g. "N1(5)" or "T3(25,1,5)".
	Name string
	// Expression is the pattern expression (with explicit gap context; see
	// DESIGN.md).
	Expression string
	// Sigma is the minimum support used on the synthetic dataset.
	Sigma int64
	// Dataset is one of "NYT", "AMZN", "AMZN-F", "CW".
	Dataset string
	// Loose marks constraints with very high candidate counts for which the
	// naive baselines (and, for the MLlib setting, D-CAND) are skipped, like
	// the OOM entries of the paper.
	Loose bool
}

// DB returns the dataset the constraint is evaluated on.
func (c Constraint) DB(ds *Datasets) *seqdb.Database {
	switch c.Dataset {
	case "NYT":
		return ds.NYT
	case "AMZN":
		return ds.AMZN
	case "AMZN-F":
		return ds.AMZNF
	case "CW":
		return ds.CW
	default:
		panic("experiments: unknown dataset " + c.Dataset)
	}
}

// Compile compiles the constraint against its dataset.
func (c Constraint) Compile(ds *Datasets) (*fst.FST, error) {
	return fst.Compile(c.Expression, c.DB(ds).Dict)
}

// Pattern-expression builders for the traditional constraints. The explicit
// leading/trailing ".*" states the gap context that the paper's FSTs admit
// implicitly (see DESIGN.md).

// T1Expr is the PrefixSpan/MLlib constraint: subsequences up to length lambda
// with arbitrary gaps and no hierarchy.
func T1Expr(lambda int) string {
	return fmt.Sprintf("[.*(.)]{1,%d}.*", lambda)
}

// T2Expr is the MG-FSM constraint: maximum gap gamma, maximum length lambda.
func T2Expr(gamma, lambda int) string {
	return fmt.Sprintf(".*(.)[.{0,%d}(.)]{1,%d}.*", gamma, lambda-1)
}

// T3Expr is the LASH constraint: T2 plus hierarchy generalization.
func T3Expr(gamma, lambda int) string {
	return fmt.Sprintf(".*(.^)[.{0,%d}(.^)]{1,%d}.*", gamma, lambda-1)
}

// Text-mining and recommendation constraints of Table III.
const (
	N1Expr = ".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*"
	N2Expr = ".*(ENTITY^ VERB+ NOUN+? PREP? ENTITY^).*"
	N3Expr = ".*(ENTITY^ be^=) DET? (ADV? ADJ? NOUN).*"
	N4Expr = ".*(.^){3} NOUN.*"
	N5Expr = ".*([.^. .]|[. .^.]|[. . .^]).*"
	A1Expr = ".*(Electr^)[.{0,2}(Electr^)]{1,4}.*"
	A2Expr = ".*(Book)[.{0,2}(Book)]{1,4}.*"
	A3Expr = ".*DigitalCamera[.{0,3}(.^)]{1,4}.*"
	A4Expr = ".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*"
)

// NYTConstraints returns the scaled text-mining constraints N1–N5.
func NYTConstraints(s Scale) []Constraint {
	// Minimum supports are scaled to the synthetic corpus size (the paper
	// uses 10–1000 on 50M sentences).
	f := float64(s.NYTSentences) / 10000.0
	sig := func(base float64) int64 {
		v := int64(base * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []Constraint{
		{Name: fmt.Sprintf("N1(%d)", sig(5)), Expression: N1Expr, Sigma: sig(5), Dataset: "NYT"},
		{Name: fmt.Sprintf("N2(%d)", sig(10)), Expression: N2Expr, Sigma: sig(10), Dataset: "NYT"},
		{Name: fmt.Sprintf("N3(%d)", sig(5)), Expression: N3Expr, Sigma: sig(5), Dataset: "NYT"},
		{Name: fmt.Sprintf("N4(%d)", sig(50)), Expression: N4Expr, Sigma: sig(50), Dataset: "NYT"},
		{Name: fmt.Sprintf("N5(%d)", sig(50)), Expression: N5Expr, Sigma: sig(50), Dataset: "NYT"},
	}
}

// AmazonConstraints returns the scaled recommendation constraints A1–A4.
func AmazonConstraints(s Scale) []Constraint {
	f := float64(s.AmazonCustomers) / 6000.0
	sig := func(base float64) int64 {
		v := int64(base * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []Constraint{
		{Name: fmt.Sprintf("A1(%d)", sig(20)), Expression: A1Expr, Sigma: sig(20), Dataset: "AMZN"},
		{Name: fmt.Sprintf("A2(%d)", sig(5)), Expression: A2Expr, Sigma: sig(5), Dataset: "AMZN"},
		{Name: fmt.Sprintf("A3(%d)", sig(5)), Expression: A3Expr, Sigma: sig(5), Dataset: "AMZN"},
		{Name: fmt.Sprintf("A4(%d)", sig(5)), Expression: A4Expr, Sigma: sig(5), Dataset: "AMZN"},
	}
}

// TraditionalConstraints returns the scaled T1–T3 constraints used in the
// CSPI statistics and the LASH/MLlib settings.
func TraditionalConstraints(s Scale) []Constraint {
	fa := float64(s.AmazonCustomers) / 6000.0
	fc := float64(s.ClueWebSentences) / 10000.0
	sig := func(base, f float64) int64 {
		v := int64(base * f)
		if v < 2 {
			v = 2
		}
		return v
	}
	return []Constraint{
		{Name: fmt.Sprintf("T3(%d,1,5)", sig(25, fa)), Expression: T3Expr(1, 5), Sigma: sig(25, fa), Dataset: "AMZN-F", Loose: true},
		{Name: fmt.Sprintf("T3(%d,1,5)", sig(100, fa)), Expression: T3Expr(1, 5), Sigma: sig(100, fa), Dataset: "AMZN-F", Loose: true},
		{Name: fmt.Sprintf("T2(%d,0,5)", sig(20, fc)), Expression: T2Expr(0, 5), Sigma: sig(20, fc), Dataset: "CW", Loose: true},
		{Name: fmt.Sprintf("T1(%d,5)", sig(100, fa)), Expression: T1Expr(5), Sigma: sig(100, fa), Dataset: "AMZN", Loose: true},
	}
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// formatDuration renders a duration with millisecond precision.
func formatDuration(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// formatBytes renders a byte count in a human-readable unit.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
