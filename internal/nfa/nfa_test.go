package nfa_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
	"seqmine/internal/nfa"
	"seqmine/internal/paperex"
)

// singleton turns a sequence of items into a path of singleton output sets.
func singleton(items ...dict.ItemID) [][]dict.ItemID {
	out := make([][]dict.ItemID, len(items))
	for i, w := range items {
		out[i] = []dict.ItemID{w}
	}
	return out
}

func decodeAll(d *dict.Dictionary, seqs [][]dict.ItemID) []string {
	out := make([]string, 0, len(seqs))
	for _, s := range seqs {
		out = append(out, d.DecodeString(s))
	}
	sort.Strings(out)
	return out
}

// TestFig7TrieAndMinimization reproduces Fig. 7 of the paper: the candidate
// NFAs for ρc(T1). The trie has 13 vertices and 12 edges; the minimized NFA
// has 7 vertices and 10 edges; both accept exactly the five pivot-c
// candidates of T1.
func TestFig7TrieAndMinimization(t *testing.T) {
	d := paperex.Dict()
	id := func(name string) dict.ItemID { return d.MustFid(name) }
	a1, b, c, dd := id("a1"), id("b"), id("c"), id("d")

	paths := [][][]dict.ItemID{
		singleton(a1, c, b),
		singleton(a1, c, c, b),
		singleton(a1, c, dd, b),
		singleton(a1, c, dd, c, b),
		singleton(a1, dd, c, b),
	}
	builder := nfa.NewBuilder()
	for _, p := range paths {
		builder.AddPath(p)
	}
	trie := builder.Trie()
	if trie.NumStates() != 13 || trie.NumEdges() != 12 {
		t.Errorf("trie has %d vertices and %d edges, want 13 and 12", trie.NumStates(), trie.NumEdges())
	}
	minimized := builder.Minimize()
	if minimized.NumStates() != 7 || minimized.NumEdges() != 10 {
		t.Errorf("minimized NFA has %d vertices and %d edges, want 7 and 10", minimized.NumStates(), minimized.NumEdges())
	}
	want := []string{"a1 c b", "a1 c c b", "a1 c d b", "a1 c d c b", "a1 d c b"}
	sort.Strings(want)
	if got := decodeAll(d, trie.Accepted()); !reflect.DeepEqual(got, want) {
		t.Errorf("trie accepts %v, want %v", got, want)
	}
	if got := decodeAll(d, minimized.Accepted()); !reflect.DeepEqual(got, want) {
		t.Errorf("minimized NFA accepts %v, want %v", got, want)
	}
	// Minimization must not increase the serialized size.
	if len(minimized.Serialize()) > len(trie.Serialize()) {
		t.Errorf("minimized serialization (%d bytes) larger than trie (%d bytes)",
			len(minimized.Serialize()), len(trie.Serialize()))
	}
}

// TestFig8NFA reproduces the NFA for ρa1(T5) of Fig. 8: 4 states, 4 edges,
// accepting a1b, a1a1b and a1Ab.
func TestFig8NFA(t *testing.T) {
	d := paperex.Dict()
	a1, A, b := d.MustFid("a1"), d.MustFid("A"), d.MustFid("b")

	builder := nfa.NewBuilder()
	// Runs r1/r2 contribute the path {a1}{b}; run r3 contributes
	// {a1}{a1,A}{b}.
	builder.AddPath(singleton(a1, b))
	builder.AddPath([][]dict.ItemID{{a1}, {A, a1}, {b}})
	min := builder.Minimize()
	if min.NumStates() != 4 || min.NumEdges() != 4 {
		t.Errorf("NFA has %d states and %d edges, want 4 and 4", min.NumStates(), min.NumEdges())
	}
	want := []string{"a1 A b", "a1 a1 b", "a1 b"}
	if got := decodeAll(d, min.Accepted()); !reflect.DeepEqual(got, want) {
		t.Errorf("accepts %v, want %v", got, want)
	}
	// Round trip through the serialization.
	decoded, err := nfa.Deserialize(min.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeAll(d, decoded.Accepted()); !reflect.DeepEqual(got, want) {
		t.Errorf("decoded NFA accepts %v, want %v", got, want)
	}
	if decoded.NumStates() != 4 || decoded.NumEdges() != 4 {
		t.Errorf("decoded NFA has %d states and %d edges, want 4 and 4", decoded.NumStates(), decoded.NumEdges())
	}
}

func TestSerializeEmptyAndSingle(t *testing.T) {
	b := nfa.NewBuilder()
	if !b.Empty() {
		t.Error("new builder should be empty")
	}
	empty := b.Minimize()
	if got := empty.Accepted(); len(got) != 0 {
		t.Errorf("empty NFA accepts %v", got)
	}
	data := empty.Serialize()
	back, err := nfa.Deserialize(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Accepted()) != 0 {
		t.Error("round-tripped empty NFA should accept nothing")
	}

	b.AddPath(singleton(5))
	if b.Empty() {
		t.Error("builder with a path should not be empty")
	}
	single := b.Minimize()
	back, err = nfa.Deserialize(single.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	got := back.Accepted()
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != 5 {
		t.Errorf("single-item NFA round trip = %v", got)
	}
}

func TestDeserializeErrors(t *testing.T) {
	bad := [][]byte{
		{0x01},                   // source flag but truncated varint
		{0x00, 0x00},             // empty label
		{0x00, 0x01},             // label count without item
		{0x02, 0x01, 0x05},       // target given but missing
		{0x01, 0x09, 0x01, 0x05}, // source id out of range
	}
	for i, data := range bad {
		if _, err := nfa.Deserialize(data); err == nil {
			t.Errorf("case %d: expected error for %v", i, data)
		}
	}
}

func TestMinePartitionCounting(t *testing.T) {
	// NFA A (weight 2) accepts {1 2, 1 3 2}; NFA B (weight 1) accepts {1 2}.
	ba := nfa.NewBuilder()
	ba.AddPath(singleton(1, 2))
	ba.AddPath(singleton(1, 3, 2))
	bb := nfa.NewBuilder()
	bb.AddPath(singleton(1, 2))

	nfas := []nfa.Weighted{
		{N: ba.Minimize(), Weight: 2},
		{N: bb.Minimize(), Weight: 1},
	}
	got := map[string]int64{}
	for _, p := range nfa.MinePartition(nfas, 2, dict.None) {
		got[keyOf(p)] = p.Freq
	}
	want := map[string]int64{"1 2": 3, "1 3 2": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MinePartition = %v, want %v", got, want)
	}

	// Pivot restriction: only candidates containing item 3.
	got = map[string]int64{}
	for _, p := range nfa.MinePartition(nfas, 2, 3) {
		got[keyOf(p)] = p.Freq
	}
	want = map[string]int64{"1 3 2": 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MinePartition(pivot=3) = %v, want %v", got, want)
	}
}

// TestMinePartitionDeduplicatesPaths: a candidate accepted via two different
// paths of the same NFA must be counted once per NFA.
func TestMinePartitionDeduplicatesPaths(t *testing.T) {
	b := nfa.NewBuilder()
	b.AddPath(singleton(1, 2))
	b.AddPath([][]dict.ItemID{{1, 2}, {2}}) // accepts "1 2" and "2 2"
	n := b.Minimize()
	got := map[string]int64{}
	for _, p := range nfa.MinePartition([]nfa.Weighted{{N: n, Weight: 5}}, 1, dict.None) {
		got[keyOf(p)] = p.Freq
	}
	want := map[string]int64{"1 2": 5, "2 2": 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MinePartition = %v, want %v", got, want)
	}
}

func keyOf(p miner.Pattern) string {
	s := ""
	for i, w := range p.Items {
		if i > 0 {
			s += " "
		}
		s += string(rune('0' + int(w)))
	}
	return s
}

// TestMinimizePreservesLanguage is a property test: for random path sets the
// trie, the minimized NFA and the serialization round trip accept the same
// language, and minimization never increases the number of states.
func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		b := nfa.NewBuilder()
		numPaths := rng.Intn(6) + 1
		for p := 0; p < numPaths; p++ {
			length := rng.Intn(4) + 1
			path := make([][]dict.ItemID, length)
			for i := range path {
				setSize := rng.Intn(2) + 1
				set := map[dict.ItemID]bool{}
				for len(set) < setSize {
					set[dict.ItemID(rng.Intn(5)+1)] = true
				}
				var label []dict.ItemID
				for w := range set {
					label = append(label, w)
				}
				sort.Slice(label, func(i, j int) bool { return label[i] < label[j] })
				path[i] = label
			}
			b.AddPath(path)
		}
		trie := b.Trie()
		min := b.Minimize()
		want := languageOf(trie)
		if got := languageOf(min); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: minimized language %v != trie language %v", trial, got, want)
		}
		if min.NumStates() > trie.NumStates() {
			t.Fatalf("trial %d: minimization increased states %d -> %d", trial, trie.NumStates(), min.NumStates())
		}
		back, err := nfa.Deserialize(min.Serialize())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := languageOf(back); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: serialization changed language", trial)
		}
	}
}

func languageOf(n *nfa.NFA) map[string]bool {
	out := map[string]bool{}
	for _, s := range n.Accepted() {
		key := ""
		for _, w := range s {
			key += string(rune('0'+int(w))) + " "
		}
		out[key] = true
	}
	return out
}
