package nfa_test

import (
	"math/rand"
	"sort"
	"testing"

	"seqmine/internal/dict"
	"seqmine/internal/nfa"
)

// benchPaths generates deterministic run paths resembling the ones D-CAND
// builds for selective constraints.
func benchPaths(numPaths int) [][][]dict.ItemID {
	rng := rand.New(rand.NewSource(3))
	paths := make([][][]dict.ItemID, numPaths)
	for i := range paths {
		length := rng.Intn(4) + 2
		path := make([][]dict.ItemID, length)
		for j := range path {
			size := rng.Intn(2) + 1
			set := map[dict.ItemID]bool{}
			for len(set) < size {
				set[dict.ItemID(rng.Intn(12)+1)] = true
			}
			var label []dict.ItemID
			for w := range set {
				label = append(label, w)
			}
			sort.Slice(label, func(a, b int) bool { return label[a] < label[b] })
			path[j] = label
		}
		paths[i] = path
	}
	return paths
}

func buildBenchNFA(numPaths int) *nfa.NFA {
	b := nfa.NewBuilder()
	for _, p := range benchPaths(numPaths) {
		b.AddPath(p)
	}
	return b.Minimize()
}

func BenchmarkBuilderAddPath(b *testing.B) {
	paths := benchPaths(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := nfa.NewBuilder()
		for _, p := range paths {
			builder.AddPath(p)
		}
	}
}

func BenchmarkMinimize(b *testing.B) {
	paths := benchPaths(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := nfa.NewBuilder()
		for _, p := range paths {
			builder.AddPath(p)
		}
		builder.Minimize()
	}
}

func BenchmarkSerialize(b *testing.B) {
	n := buildBenchNFA(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Serialize()
	}
}

func BenchmarkDeserialize(b *testing.B) {
	data := buildBenchNFA(64).Serialize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nfa.Deserialize(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinePartition(b *testing.B) {
	var weighted []nfa.Weighted
	for i := 0; i < 32; i++ {
		weighted = append(weighted, nfa.Weighted{N: buildBenchNFA(16), Weight: int64(i%5 + 1)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nfa.MinePartition(weighted, 3, dict.None)
	}
}
