// Package nfa implements the candidate representation of D-CAND (Sec. VI of
// the paper): the candidate subsequences that an input sequence generates for
// one pivot item are encoded as an acyclic nondeterministic finite automaton
// whose edges are labeled with output sets. The package provides trie
// construction from accepting runs, minimization of the acyclic automaton
// (suffix sharing, Revuz-style), the compact depth-first serialization of
// Sec. VI-A, and the weighted pattern-growth miner used for local mining
// (Sec. VI-B).
package nfa

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
)

// Edge is one labeled transition of a candidate NFA. The label is a non-empty
// output set, sorted by ascending fid: the edge accepts any single item of the
// set.
type Edge struct {
	Label []dict.ItemID
	To    int
}

// NFA is an acyclic automaton over items; it accepts a finite set of item
// sequences (the candidate subsequences sent to one partition). State 0 is
// the root.
type NFA struct {
	edges [][]Edge
	final []bool
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.edges) }

// NumEdges returns the number of edges.
func (n *NFA) NumEdges() int {
	c := 0
	for _, es := range n.edges {
		c += len(es)
	}
	return c
}

// IsFinal reports whether state q is accepting.
func (n *NFA) IsFinal(q int) bool { return n.final[q] }

// Edges returns the outgoing edges of state q. The slice must not be
// modified.
func (n *NFA) Edges(q int) []Edge { return n.edges[q] }

// Accepted enumerates the distinct item sequences accepted by the NFA, in
// lexicographic order. Intended for tests and small automata.
func (n *NFA) Accepted() [][]dict.ItemID {
	if len(n.edges) == 0 {
		return nil
	}
	set := map[string][]dict.ItemID{}
	var cur []dict.ItemID
	var rec func(q int)
	rec = func(q int) {
		if n.final[q] && len(cur) > 0 {
			key := labelKey(cur)
			if _, ok := set[key]; !ok {
				set[key] = append([]dict.ItemID(nil), cur...)
			}
		}
		for _, e := range n.edges[q] {
			for _, w := range e.Label {
				cur = append(cur, w)
				rec(e.To)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0)
	out := make([][]dict.ItemID, 0, len(set))
	for _, s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return lessSeq(out[i], out[j]) })
	return out
}

func lessSeq(a, b []dict.ItemID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func labelKey(items []dict.ItemID) string {
	buf := make([]byte, 0, len(items)*4)
	for _, v := range items {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Builder accumulates the accepting-run paths of one input sequence for one
// pivot item as a trie and turns them into a (optionally minimized) NFA.
type Builder struct {
	edges  [][]Edge
	final  []bool
	lookup []map[string]int // child lookup per state keyed by label
}

// NewBuilder returns a Builder containing only the root state.
func NewBuilder() *Builder {
	return &Builder{
		edges:  [][]Edge{nil},
		final:  []bool{false},
		lookup: []map[string]int{nil},
	}
}

// Empty reports whether no path has been added yet.
func (b *Builder) Empty() bool { return len(b.edges) == 1 && !b.final[0] }

// AddPath inserts one accepting-run path: a sequence of non-empty output
// sets (ε sets must already be removed by the caller). Paths of length zero
// are ignored.
func (b *Builder) AddPath(sets [][]dict.ItemID) {
	if len(sets) == 0 {
		return
	}
	cur := 0
	for _, set := range sets {
		key := labelKey(set)
		if b.lookup[cur] == nil {
			b.lookup[cur] = map[string]int{}
		}
		next, ok := b.lookup[cur][key]
		if !ok {
			next = len(b.edges)
			b.edges = append(b.edges, nil)
			b.final = append(b.final, false)
			b.lookup = append(b.lookup, nil)
			label := append([]dict.ItemID(nil), set...)
			b.edges[cur] = append(b.edges[cur], Edge{Label: label, To: next})
			b.lookup[cur][key] = next
		}
		cur = next
	}
	b.final[cur] = true
}

// Trie returns the accumulated automaton without suffix sharing.
func (b *Builder) Trie() *NFA {
	edges := make([][]Edge, len(b.edges))
	for i, es := range b.edges {
		edges[i] = append([]Edge(nil), es...)
	}
	return &NFA{edges: edges, final: append([]bool(nil), b.final...)}
}

// Minimize returns the automaton with equivalent suffixes merged. Because the
// trie is acyclic, a single bottom-up pass (processing states in reverse
// topological order and hashing their behaviour) yields the minimal
// deterministic automaton over output-set labels, in linear time (Revuz).
func (b *Builder) Minimize() *NFA {
	n := len(b.edges)
	order := make([]int, 0, n)
	visited := make([]bool, n)
	var topo func(q int)
	topo = func(q int) {
		visited[q] = true
		for _, e := range b.edges[q] {
			if !visited[e.To] {
				topo(e.To)
			}
		}
		order = append(order, q) // children first
	}
	topo(0)

	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	signatures := map[string]int{}
	type classInfo struct {
		final bool
		edges []Edge // labels + class ids
	}
	var classes []classInfo
	for _, q := range order {
		sigParts := make([]string, 0, len(b.edges[q])+1)
		if b.final[q] {
			sigParts = append(sigParts, "F")
		}
		es := make([]Edge, 0, len(b.edges[q]))
		for _, e := range b.edges[q] {
			es = append(es, Edge{Label: e.Label, To: classOf[e.To]})
		}
		sort.Slice(es, func(i, j int) bool {
			if ki, kj := labelKey(es[i].Label), labelKey(es[j].Label); ki != kj {
				return ki < kj
			}
			return es[i].To < es[j].To
		})
		for _, e := range es {
			sigParts = append(sigParts, fmt.Sprintf("%s>%d", labelKey(e.Label), e.To))
		}
		sig := strings.Join(sigParts, "|")
		if c, ok := signatures[sig]; ok {
			classOf[q] = c
			continue
		}
		c := len(classes)
		signatures[sig] = c
		classes = append(classes, classInfo{final: b.final[q], edges: es})
		classOf[q] = c
	}

	// Renumber classes so the root's class is state 0 and states appear in a
	// breadth-first order from the root (deterministic output).
	rootClass := classOf[0]
	id := make([]int, len(classes))
	for i := range id {
		id[i] = -1
	}
	queue := []int{rootClass}
	id[rootClass] = 0
	next := 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, e := range classes[c].edges {
			if id[e.To] == -1 {
				id[e.To] = next
				next++
				queue = append(queue, e.To)
			}
		}
	}
	out := &NFA{edges: make([][]Edge, next), final: make([]bool, next)}
	for c, info := range classes {
		if id[c] == -1 {
			continue // unreachable class (cannot normally happen)
		}
		q := id[c]
		out.final[q] = info.final
		for _, e := range info.edges {
			out.edges[q] = append(out.edges[q], Edge{Label: e.Label, To: id[e.To]})
		}
	}
	return out
}

// flag bits of the serialization scheme (Sec. VI-A).
const (
	flagSourceGiven = 1 << 0 // the edge does not start at the previous edge's target
	flagTargetGiven = 1 << 1 // the edge ends in an already-serialized state
	flagTargetFinal = 1 << 2 // the (new) target state is final
)

// Serialize encodes the NFA with the depth-first scheme of the paper: edges
// are written in DFS order; the source state is omitted when it equals the
// previous edge's target, the target state is omitted when it is new, and new
// final targets carry a final marker.
func (n *NFA) Serialize() []byte {
	var buf []byte
	if n.NumStates() == 0 {
		return buf
	}
	ids := make([]int, n.NumStates())
	for i := range ids {
		ids[i] = -1
	}
	ids[0] = 0
	nextID := 1
	prevTarget := 0
	var dfs func(q int)
	dfs = func(q int) {
		for _, e := range n.edges[q] {
			flags := byte(0)
			if prevTarget != q {
				flags |= flagSourceGiven
			}
			targetKnown := ids[e.To] != -1
			if targetKnown {
				flags |= flagTargetGiven
			} else if n.final[e.To] {
				flags |= flagTargetFinal
			}
			buf = append(buf, flags)
			if flags&flagSourceGiven != 0 {
				buf = appendUvarint(buf, uint64(ids[q]))
			}
			buf = appendUvarint(buf, uint64(len(e.Label)))
			for _, w := range e.Label {
				buf = appendUvarint(buf, uint64(w))
			}
			if targetKnown {
				buf = appendUvarint(buf, uint64(ids[e.To]))
				prevTarget = e.To
			} else {
				ids[e.To] = nextID
				nextID++
				prevTarget = e.To
				dfs(e.To)
			}
		}
	}
	dfs(0)
	return buf
}

// Deserialize decodes an NFA produced by Serialize.
func Deserialize(data []byte) (*NFA, error) {
	n := &NFA{edges: [][]Edge{nil}, final: []bool{false}}
	pos := 0
	prevTarget := 0
	byID := []int{0} // serialization id -> state index
	for pos < len(data) {
		flags := data[pos]
		pos++
		source := prevTarget
		if flags&flagSourceGiven != 0 {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			// Compare in uint64: converting first could overflow int and
			// slip past the bounds check.
			if v >= uint64(len(byID)) {
				return nil, fmt.Errorf("nfa: invalid source state %d", v)
			}
			source = byID[v]
		}
		count, np, err := readUvarint(data, pos)
		if err != nil {
			return nil, err
		}
		pos = np
		if count == 0 {
			return nil, errors.New("nfa: empty edge label")
		}
		// Every label item occupies at least one byte, so a count beyond the
		// remaining payload is corrupt (and would otherwise pre-allocate an
		// attacker-chosen amount of memory).
		if count > uint64(len(data)-pos) {
			return nil, fmt.Errorf("nfa: label claims %d items in %d bytes", count, len(data)-pos)
		}
		label := make([]dict.ItemID, count)
		for i := range label {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			label[i] = dict.ItemID(v)
		}
		var target int
		if flags&flagTargetGiven != 0 {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			if v >= uint64(len(byID)) {
				return nil, fmt.Errorf("nfa: invalid target state %d", v)
			}
			target = byID[v]
		} else {
			target = len(n.edges)
			n.edges = append(n.edges, nil)
			n.final = append(n.final, flags&flagTargetFinal != 0)
			byID = append(byID, target)
		}
		n.edges[source] = append(n.edges[source], Edge{Label: label, To: target})
		prevTarget = target
	}
	return n, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func readUvarint(data []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if pos >= len(data) {
			return 0, 0, errors.New("nfa: truncated varint")
		}
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, pos, nil
		}
		shift += 7
		if shift > 63 {
			return 0, 0, errors.New("nfa: varint overflow")
		}
	}
}

// Weighted is an NFA together with the number of input sequences that sent
// it (combiner aggregation of Sec. VI-A).
type Weighted struct {
	N      *NFA
	Weight int64
}

// MinePartition counts the candidate subsequences accepted by the weighted
// NFAs of one partition using pattern growth (Sec. VI-B) and returns the ones
// whose support reaches sigma. Each NFA contributes its weight at most once
// per candidate. When pivot is non-zero, only candidates containing the pivot
// item are reported.
func MinePartition(nfas []Weighted, sigma int64, pivot dict.ItemID) []miner.Pattern {
	m := &nfaMiner{nfas: nfas, sigma: sigma, pivot: pivot}
	// Root projection: every non-empty NFA at its root state.
	root := make([]projEntry, 0, len(nfas))
	for i, wn := range nfas {
		if wn.N == nil || wn.N.NumStates() == 0 {
			continue
		}
		root = append(root, projEntry{nfa: i, states: []int{0}})
	}
	m.expand(nil, root)
	miner.SortPatterns(m.out)
	return m.out
}

type projEntry struct {
	nfa    int
	states []int
}

type nfaMiner struct {
	nfas  []Weighted
	sigma int64
	pivot dict.ItemID
	out   []miner.Pattern
}

func (m *nfaMiner) expand(prefix []dict.ItemID, proj []projEntry) {
	// Support of the prefix as a complete candidate.
	if len(prefix) > 0 {
		var freq int64
		for _, p := range proj {
			n := m.nfas[p.nfa].N
			for _, q := range p.states {
				if n.IsFinal(q) {
					freq += m.nfas[p.nfa].Weight
					break
				}
			}
		}
		if freq >= m.sigma && (m.pivot == dict.None || containsItem(prefix, m.pivot)) {
			m.out = append(m.out, miner.Pattern{Items: append([]dict.ItemID(nil), prefix...), Freq: freq})
		}
	}

	// Expansions per item.
	type expState struct {
		proj    []projEntry
		lastNFA int
	}
	expansions := map[dict.ItemID]*expState{}
	for _, p := range proj {
		n := m.nfas[p.nfa].N
		type target struct {
			item  dict.ItemID
			state int
		}
		seen := map[target]bool{}
		for _, q := range p.states {
			for _, e := range n.Edges(q) {
				for _, w := range e.Label {
					tg := target{item: w, state: e.To}
					if seen[tg] {
						continue
					}
					seen[tg] = true
					es := expansions[w]
					if es == nil {
						es = &expState{lastNFA: -1}
						expansions[w] = es
					}
					if es.lastNFA != p.nfa {
						es.proj = append(es.proj, projEntry{nfa: p.nfa})
						es.lastNFA = p.nfa
					}
					last := &es.proj[len(es.proj)-1]
					last.states = append(last.states, e.To)
				}
			}
		}
	}

	items := make([]dict.ItemID, 0, len(expansions))
	for w := range expansions {
		items = append(items, w)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	for _, w := range items {
		es := expansions[w]
		var support int64
		for _, p := range es.proj {
			support += m.nfas[p.nfa].Weight
		}
		if support < m.sigma {
			continue
		}
		m.expand(append(prefix, w), es.proj)
	}
}

func containsItem(seq []dict.ItemID, w dict.ItemID) bool {
	for _, it := range seq {
		if it == w {
			return true
		}
	}
	return false
}
