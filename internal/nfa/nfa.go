// Package nfa implements the candidate representation of D-CAND (Sec. VI of
// the paper): the candidate subsequences that an input sequence generates for
// one pivot item are encoded as an acyclic nondeterministic finite automaton
// whose edges are labeled with output sets. The package provides trie
// construction from accepting runs, minimization of the acyclic automaton
// (suffix sharing, Revuz-style), the compact depth-first serialization of
// Sec. VI-A, and the weighted pattern-growth miner used for local mining
// (Sec. VI-B).
package nfa

import (
	"errors"
	"fmt"
	"math/bits"
	"slices"
	"sort"

	"seqmine/internal/dict"
	"seqmine/internal/miner"
)

// Edge is one labeled transition of a candidate NFA. The label is a non-empty
// output set, sorted by ascending fid: the edge accepts any single item of the
// set.
type Edge struct {
	Label []dict.ItemID
	To    int
}

// NFA is an acyclic automaton over items; it accepts a finite set of item
// sequences (the candidate subsequences sent to one partition). State 0 is
// the root.
type NFA struct {
	edges [][]Edge
	final []bool
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.edges) }

// NumEdges returns the number of edges.
func (n *NFA) NumEdges() int {
	c := 0
	for _, es := range n.edges {
		c += len(es)
	}
	return c
}

// IsFinal reports whether state q is accepting.
func (n *NFA) IsFinal(q int) bool { return n.final[q] }

// Edges returns the outgoing edges of state q. The slice must not be
// modified.
func (n *NFA) Edges(q int) []Edge { return n.edges[q] }

// Accepted enumerates the distinct item sequences accepted by the NFA, in
// lexicographic order. Intended for tests and small automata.
func (n *NFA) Accepted() [][]dict.ItemID {
	if len(n.edges) == 0 {
		return nil
	}
	set := map[string][]dict.ItemID{}
	var cur []dict.ItemID
	var rec func(q int)
	rec = func(q int) {
		if n.final[q] && len(cur) > 0 {
			key := labelKey(cur)
			if _, ok := set[key]; !ok {
				set[key] = append([]dict.ItemID(nil), cur...)
			}
		}
		for _, e := range n.edges[q] {
			for _, w := range e.Label {
				cur = append(cur, w)
				rec(e.To)
				cur = cur[:len(cur)-1]
			}
		}
	}
	rec(0)
	out := make([][]dict.ItemID, 0, len(set))
	for _, s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return lessSeq(out[i], out[j]) })
	return out
}

func lessSeq(a, b []dict.ItemID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func labelKey(items []dict.ItemID) string {
	buf := make([]byte, 0, len(items)*4)
	for _, v := range items {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// Builder accumulates the accepting-run paths of one input sequence for one
// pivot item as a trie and turns them into a (optionally minimized) NFA. A
// Builder can be Reset and reused across sequences; the map phase of D-CAND
// pools them, so the per-state and per-label storage is amortized across a
// whole input split instead of being reallocated per sequence.
type Builder struct {
	edges [][]Edge
	final []bool
	// labelArena backs the edge labels. Labels are immutable once inserted,
	// so aliasing survives arena growth (older labels keep pointing into the
	// superseded backing arrays, which stay alive through them).
	labelArena []dict.ItemID

	// Minimize scratch, reused across calls.
	sigBuf   []byte
	esBuf    []Edge
	classBuf []Edge
}

// NewBuilder returns a Builder containing only the root state.
func NewBuilder() *Builder {
	return &Builder{
		edges: [][]Edge{nil},
		final: []bool{false},
	}
}

// Empty reports whether no path has been added yet.
func (b *Builder) Empty() bool { return len(b.edges) == 1 && !b.final[0] }

// Reset returns the Builder to the empty state while keeping its storage for
// reuse. NFAs previously produced by this Builder (and their serialized
// forms' label slices) alias the Builder's arenas, so they must be fully
// consumed before Reset.
func (b *Builder) Reset() {
	for i := range b.edges {
		b.edges[i] = b.edges[i][:0]
	}
	b.edges = b.edges[:1]
	b.final = b.final[:1]
	b.final[0] = false
	b.labelArena = b.labelArena[:0]
}

// newState appends one fresh state, reusing the per-state edge slices a
// previous use of the Builder left behind.
func (b *Builder) newState() int {
	q := len(b.edges)
	if q < cap(b.edges) {
		b.edges = b.edges[:q+1]
		b.edges[q] = b.edges[q][:0]
	} else {
		b.edges = append(b.edges, nil)
	}
	b.final = append(b.final, false)
	return q
}

// AddPath inserts one accepting-run path: a sequence of non-empty output
// sets (ε sets must already be removed by the caller). Paths of length zero
// are ignored. Children are matched by a linear scan over the state's edges —
// trie fan-out is small, and the scan beats hashing the label for it.
func (b *Builder) AddPath(sets [][]dict.ItemID) {
	if len(sets) == 0 {
		return
	}
	cur := 0
	for _, set := range sets {
		next := -1
		for _, e := range b.edges[cur] {
			if labelsEqual(e.Label, set) {
				next = e.To
				break
			}
		}
		if next == -1 {
			next = b.newState()
			off := len(b.labelArena)
			b.labelArena = append(b.labelArena, set...)
			label := b.labelArena[off:len(b.labelArena):len(b.labelArena)]
			b.edges[cur] = append(b.edges[cur], Edge{Label: label, To: next})
		}
		cur = next
	}
	b.final[cur] = true
}

func labelsEqual(a, b []dict.ItemID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Trie returns the accumulated automaton without suffix sharing.
func (b *Builder) Trie() *NFA {
	edges := make([][]Edge, len(b.edges))
	for i, es := range b.edges {
		edges[i] = append([]Edge(nil), es...)
	}
	return &NFA{edges: edges, final: append([]bool(nil), b.final...)}
}

// cmpLabel orders labels by the little-endian byte encoding labelKey used to
// produce — the historical signature and edge order, which serialized outputs
// depend on byte-for-byte. Lexicographic LE-byte order equals numeric order
// of the byte-reversed item values.
func cmpLabel(a, b []dict.ItemID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			x, y := bits.ReverseBytes32(uint32(a[i])), bits.ReverseBytes32(uint32(b[i]))
			if x < y {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Minimize returns the automaton with equivalent suffixes merged. Because the
// trie is acyclic, a single bottom-up pass (processing states in reverse
// topological order and hashing their behaviour) yields the minimal
// deterministic automaton over output-set labels, in linear time (Revuz).
// State signatures are built in a reused byte buffer and interned with a
// non-escaping map lookup, so the pass allocates per distinct class, not per
// state or per edge.
func (b *Builder) Minimize() *NFA {
	n := len(b.edges)
	order := make([]int, 0, n)
	visited := make([]bool, n)
	var topo func(q int)
	topo = func(q int) {
		visited[q] = true
		for _, e := range b.edges[q] {
			if !visited[e.To] {
				topo(e.To)
			}
		}
		order = append(order, q) // children first
	}
	topo(0)

	classOf := make([]int, n)
	for i := range classOf {
		classOf[i] = -1
	}
	signatures := map[string]int{}
	type classInfo struct {
		final    bool
		off, end int // class edges in b.classBuf (labels + class ids)
	}
	var classes []classInfo
	for _, q := range order {
		es := b.esBuf[:0]
		for _, e := range b.edges[q] {
			es = append(es, Edge{Label: e.Label, To: classOf[e.To]})
		}
		slices.SortFunc(es, func(x, y Edge) int {
			if c := cmpLabel(x.Label, y.Label); c != 0 {
				return c
			}
			return x.To - y.To
		})
		b.esBuf = es
		// The signature encodes the state's behaviour injectively: finality,
		// then each edge's label length, label items (LE bytes, the labelKey
		// form) and target class.
		sig := b.sigBuf[:0]
		if b.final[q] {
			sig = append(sig, 'F')
		} else {
			sig = append(sig, '-')
		}
		for _, e := range es {
			sig = appendUvarint(sig, uint64(len(e.Label)))
			for _, v := range e.Label {
				sig = append(sig, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			sig = appendUvarint(sig, uint64(e.To))
		}
		b.sigBuf = sig
		if c, ok := signatures[string(sig)]; ok {
			classOf[q] = c
			continue
		}
		c := len(classes)
		signatures[string(sig)] = c
		off := len(b.classBuf)
		b.classBuf = append(b.classBuf, es...)
		classes = append(classes, classInfo{final: b.final[q], off: off, end: len(b.classBuf)})
		classOf[q] = c
	}

	// Renumber classes so the root's class is state 0 and states appear in a
	// breadth-first order from the root (deterministic output).
	rootClass := classOf[0]
	id := make([]int, len(classes))
	for i := range id {
		id[i] = -1
	}
	queue := []int{rootClass}
	id[rootClass] = 0
	next := 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, e := range b.classBuf[classes[c].off:classes[c].end] {
			if id[e.To] == -1 {
				id[e.To] = next
				next++
				queue = append(queue, e.To)
			}
		}
	}
	out := &NFA{edges: make([][]Edge, next), final: make([]bool, next)}
	for c, info := range classes {
		if id[c] == -1 {
			continue // unreachable class (cannot normally happen)
		}
		q := id[c]
		out.final[q] = info.final
		ces := b.classBuf[info.off:info.end]
		if len(ces) > 0 {
			qes := make([]Edge, 0, len(ces))
			for _, e := range ces {
				qes = append(qes, Edge{Label: e.Label, To: id[e.To]})
			}
			out.edges[q] = qes
		}
	}
	b.classBuf = b.classBuf[:0]
	return out
}

// flag bits of the serialization scheme (Sec. VI-A).
const (
	flagSourceGiven = 1 << 0 // the edge does not start at the previous edge's target
	flagTargetGiven = 1 << 1 // the edge ends in an already-serialized state
	flagTargetFinal = 1 << 2 // the (new) target state is final
)

// Serialize encodes the NFA with the depth-first scheme of the paper: edges
// are written in DFS order; the source state is omitted when it equals the
// previous edge's target, the target state is omitted when it is new, and new
// final targets carry a final marker.
func (n *NFA) Serialize() []byte {
	var buf []byte
	if n.NumStates() == 0 {
		return buf
	}
	ids := make([]int, n.NumStates())
	for i := range ids {
		ids[i] = -1
	}
	ids[0] = 0
	nextID := 1
	prevTarget := 0
	var dfs func(q int)
	dfs = func(q int) {
		for _, e := range n.edges[q] {
			flags := byte(0)
			if prevTarget != q {
				flags |= flagSourceGiven
			}
			targetKnown := ids[e.To] != -1
			if targetKnown {
				flags |= flagTargetGiven
			} else if n.final[e.To] {
				flags |= flagTargetFinal
			}
			buf = append(buf, flags)
			if flags&flagSourceGiven != 0 {
				buf = appendUvarint(buf, uint64(ids[q]))
			}
			buf = appendUvarint(buf, uint64(len(e.Label)))
			for _, w := range e.Label {
				buf = appendUvarint(buf, uint64(w))
			}
			if targetKnown {
				buf = appendUvarint(buf, uint64(ids[e.To]))
				prevTarget = e.To
			} else {
				ids[e.To] = nextID
				nextID++
				prevTarget = e.To
				dfs(e.To)
			}
		}
	}
	dfs(0)
	return buf
}

// Deserialize decodes an NFA produced by Serialize. All labels decode into
// one arena sized by the payload (every label item occupies at least one
// encoded byte), so decoding allocates per automaton, not per edge.
func Deserialize(data []byte) (*NFA, error) {
	n := &NFA{edges: [][]Edge{nil}, final: []bool{false}}
	pos := 0
	prevTarget := 0
	byID := []int{0} // serialization id -> state index
	arena := make([]dict.ItemID, 0, len(data))
	for pos < len(data) {
		flags := data[pos]
		pos++
		source := prevTarget
		if flags&flagSourceGiven != 0 {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			// Compare in uint64: converting first could overflow int and
			// slip past the bounds check.
			if v >= uint64(len(byID)) {
				return nil, fmt.Errorf("nfa: invalid source state %d", v)
			}
			source = byID[v]
		}
		count, np, err := readUvarint(data, pos)
		if err != nil {
			return nil, err
		}
		pos = np
		if count == 0 {
			return nil, errors.New("nfa: empty edge label")
		}
		// Every label item occupies at least one byte, so a count beyond the
		// remaining payload is corrupt (and would otherwise pre-allocate an
		// attacker-chosen amount of memory).
		if count > uint64(len(data)-pos) {
			return nil, fmt.Errorf("nfa: label claims %d items in %d bytes", count, len(data)-pos)
		}
		off := len(arena)
		for i := uint64(0); i < count; i++ {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			arena = append(arena, dict.ItemID(v))
		}
		label := arena[off:len(arena):len(arena)]
		var target int
		if flags&flagTargetGiven != 0 {
			v, np, err := readUvarint(data, pos)
			if err != nil {
				return nil, err
			}
			pos = np
			if v >= uint64(len(byID)) {
				return nil, fmt.Errorf("nfa: invalid target state %d", v)
			}
			target = byID[v]
		} else {
			target = len(n.edges)
			n.edges = append(n.edges, nil)
			n.final = append(n.final, flags&flagTargetFinal != 0)
			byID = append(byID, target)
		}
		n.edges[source] = append(n.edges[source], Edge{Label: label, To: target})
		prevTarget = target
	}
	return n, nil
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

func readUvarint(data []byte, pos int) (uint64, int, error) {
	var v uint64
	var shift uint
	for {
		if pos >= len(data) {
			return 0, 0, errors.New("nfa: truncated varint")
		}
		b := data[pos]
		pos++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, pos, nil
		}
		shift += 7
		if shift > 63 {
			return 0, 0, errors.New("nfa: varint overflow")
		}
	}
}

// Weighted is an NFA together with the number of input sequences that sent
// it (combiner aggregation of Sec. VI-A).
type Weighted struct {
	N      *NFA
	Weight int64
}

// MinePartition counts the candidate subsequences accepted by the weighted
// NFAs of one partition using pattern growth (Sec. VI-B) and returns the ones
// whose support reaches sigma. Each NFA contributes its weight at most once
// per candidate. When pivot is non-zero, only candidates containing the pivot
// item are reported.
func MinePartition(nfas []Weighted, sigma int64, pivot dict.ItemID) []miner.Pattern {
	m := &nfaMiner{nfas: nfas, sigma: sigma, pivot: pivot}
	// Root projection: every non-empty NFA at its root state. The state list
	// is the same for every entry, so all of them share one.
	rootState := [1]int{0}
	root := make([]projEntry, 0, len(nfas))
	for i, wn := range nfas {
		if wn.N == nil || wn.N.NumStates() == 0 {
			continue
		}
		root = append(root, projEntry{nfa: i, states: rootState[:]})
	}
	m.expand(0, root)
	miner.SortPatterns(m.out)
	return m.out
}

type projEntry struct {
	nfa    int
	states []int
}

// expTarget dedups (projection entry, item, target state) triples within one
// expansion pass. Keying by the nfa index is equivalent to the historical
// per-entry dedup map because a projection holds each NFA at most once.
type expTarget struct {
	nfa, state int
	item       dict.ItemID
}

// itemExp is the projection being built for one expansion item. proj and its
// nested state slices are reused across passes at the same depth.
type itemExp struct {
	proj    []projEntry
	lastNFA int
}

// addTarget appends target state to the projection, extending the current
// NFA's entry or reusing a retired one.
func (ie *itemExp) addTarget(nfa, state int) {
	if ie.lastNFA != nfa {
		if len(ie.proj) < cap(ie.proj) {
			ie.proj = ie.proj[:len(ie.proj)+1]
			pe := &ie.proj[len(ie.proj)-1]
			pe.nfa = nfa
			pe.states = pe.states[:0]
		} else {
			ie.proj = append(ie.proj, projEntry{nfa: nfa})
		}
		ie.lastNFA = nfa
	}
	pe := &ie.proj[len(ie.proj)-1]
	pe.states = append(pe.states, state)
}

// exLevel is the reusable expansion scratch of one recursion depth: maps are
// cleared (buckets kept), slices truncated, and the itemExp pool — including
// its nested projection slices — is recycled entry by entry.
type exLevel struct {
	exp     map[dict.ItemID]int // item -> index into entries[:used]
	seen    map[expTarget]bool
	items   []dict.ItemID
	entries []itemExp
	used    int
}

type nfaMiner struct {
	nfas   []Weighted
	sigma  int64
	pivot  dict.ItemID
	out    []miner.Pattern
	prefix []dict.ItemID
	levels []*exLevel
}

func (m *nfaMiner) expand(depth int, proj []projEntry) {
	// Support of the prefix as a complete candidate.
	if depth > 0 {
		var freq int64
		for _, p := range proj {
			n := m.nfas[p.nfa].N
			for _, q := range p.states {
				if n.IsFinal(q) {
					freq += m.nfas[p.nfa].Weight
					break
				}
			}
		}
		if freq >= m.sigma && (m.pivot == dict.None || containsItem(m.prefix, m.pivot)) {
			m.out = append(m.out, miner.Pattern{Items: append([]dict.ItemID(nil), m.prefix...), Freq: freq})
		}
	}

	// Expansions per item, grouped into this depth's reused scratch. A child
	// call only reads its projection and writes deeper levels, so the scratch
	// stays valid while the item loop below recurses.
	if depth >= len(m.levels) {
		m.levels = append(m.levels, &exLevel{exp: map[dict.ItemID]int{}, seen: map[expTarget]bool{}})
	}
	lv := m.levels[depth]
	clear(lv.exp)
	clear(lv.seen)
	lv.items = lv.items[:0]
	lv.used = 0
	for _, p := range proj {
		n := m.nfas[p.nfa].N
		for _, q := range p.states {
			for _, e := range n.Edges(q) {
				for _, w := range e.Label {
					tg := expTarget{nfa: p.nfa, state: e.To, item: w}
					if lv.seen[tg] {
						continue
					}
					lv.seen[tg] = true
					idx, ok := lv.exp[w]
					if !ok {
						idx = lv.used
						if idx < len(lv.entries) {
							ie := &lv.entries[idx]
							ie.proj = ie.proj[:0]
							ie.lastNFA = -1
						} else {
							lv.entries = append(lv.entries, itemExp{lastNFA: -1})
						}
						lv.used++
						lv.exp[w] = idx
						lv.items = append(lv.items, w)
					}
					lv.entries[idx].addTarget(p.nfa, e.To)
				}
			}
		}
	}

	slices.Sort(lv.items)
	for _, w := range lv.items {
		es := &lv.entries[lv.exp[w]]
		var support int64
		for _, p := range es.proj {
			support += m.nfas[p.nfa].Weight
		}
		if support < m.sigma {
			continue
		}
		m.prefix = append(m.prefix, w)
		m.expand(depth+1, es.proj)
		m.prefix = m.prefix[:len(m.prefix)-1]
	}
}

func containsItem(seq []dict.ItemID, w dict.ItemID) bool {
	for _, it := range seq {
		if it == w {
			return true
		}
	}
	return false
}
