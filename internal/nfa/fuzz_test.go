package nfa

import (
	"bytes"
	"reflect"
	"testing"

	"seqmine/internal/dict"
)

// FuzzDeserialize feeds arbitrary bytes into the NFA codec. Garbage must
// fail cleanly (no panic, no unbounded allocation); any input that decodes
// must reach a serialization fixed point: Serialize(Deserialize(x)) is
// canonical, so re-decoding and re-encoding it reproduces the same bytes.
// (Accepted() is not compared here because arbitrary input may encode cyclic
// automata, on which language enumeration would not terminate.)
func FuzzDeserialize(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	b := NewBuilder()
	b.AddPath([][]dict.ItemID{{1, 2}, {3}})
	b.AddPath([][]dict.ItemID{{1}, {3}})
	f.Add(b.Minimize().Serialize())
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Deserialize(data)
		if err != nil {
			return
		}
		canonical := n.Serialize()
		n2, err := Deserialize(canonical)
		if err != nil {
			t.Fatalf("re-deserialize failed: %v (bytes %x)", err, canonical)
		}
		if again := n2.Serialize(); !bytes.Equal(again, canonical) {
			t.Fatalf("serialization is not a fixed point:\n first %x\nsecond %x", canonical, again)
		}
	})
}

// FuzzBuilderRoundTrip derives a set of trie paths from the fuzz input,
// builds both the plain trie and the minimized NFA, and checks that the
// accepted language survives Serialize/Deserialize unchanged.
func FuzzBuilderRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 0, 3})
	f.Add([]byte{5, 5, 5, 0, 5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // keep language enumeration cheap
		}
		// Interpret the bytes as paths: 0 terminates a path, the low bits of
		// every other byte pick an item and whether the output set has one or
		// two items.
		b := NewBuilder()
		var path [][]dict.ItemID
		flush := func() {
			if len(path) > 0 {
				b.AddPath(path)
				path = nil
			}
		}
		for _, c := range data {
			if c == 0 {
				flush()
				continue
			}
			item := dict.ItemID(c&0x0f) + 1
			set := []dict.ItemID{item}
			if c&0x10 != 0 {
				set = append(set, item+1)
			}
			path = append(path, set)
		}
		flush()

		for _, n := range []*NFA{b.Trie(), b.Minimize()} {
			want := n.Accepted()
			decoded, err := Deserialize(n.Serialize())
			if err != nil {
				t.Fatalf("Deserialize(Serialize): %v", err)
			}
			if got := decoded.Accepted(); !reflect.DeepEqual(got, want) {
				t.Fatalf("accepted language changed over the wire:\n got %v\nwant %v", got, want)
			}
		}
	})
}
