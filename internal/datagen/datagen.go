// Package datagen generates the synthetic datasets used by the experiment
// harness. The paper evaluates on the New York Times Annotated Corpus, Amazon
// product reviews and a ClueWeb sample, none of which can be redistributed;
// the generators below produce deterministic, scaled-down datasets with the
// same structural properties that the paper's subsequence constraints
// exercise:
//
//   - NYT-like: sentences over a vocabulary with token→lemma→POS and
//     entity→type→ENTITY hierarchies, containing relational phrases between
//     entities (constraints N1–N5).
//   - AMZN-like: per-customer product sequences over a
//     product→category→department hierarchy, with correlated purchases
//     (constraints A1–A4, T1, T3); an optional forest variant mirrors AMZN-F.
//   - CW-like: plain sentences without a hierarchy (constraint T2).
package datagen

import (
	"fmt"
	"math/rand"

	"seqmine/internal/seqdb"
)

// ---------------------------------------------------------------------------
// NYT-like text corpus
// ---------------------------------------------------------------------------

// NYTConfig configures the NYT-like generator.
type NYTConfig struct {
	// NumSentences is the number of input sequences to generate.
	NumSentences int
	// Seed makes the dataset deterministic.
	Seed int64
}

// nytVocabulary holds the word lists of the NYT-like generator.
type nytVocabulary struct {
	hierarchy seqdb.Hierarchy
	verbs     [][]string // inflected forms per lemma
	nouns     []string
	adjs      []string
	advs      []string
	dets      []string
	preps     []string
	entities  []string
	fillers   []string   // all non-entity tokens, for noise
	relations [][]string // relational phrases placed between entities
}

func buildNYTVocabulary() *nytVocabulary {
	v := &nytVocabulary{hierarchy: seqdb.Hierarchy{}}
	addWord := func(token, lemma, pos string) {
		v.hierarchy[token] = []string{lemma}
		if _, ok := v.hierarchy[lemma]; !ok {
			v.hierarchy[lemma] = []string{pos}
		}
		if _, ok := v.hierarchy[pos]; !ok {
			v.hierarchy[pos] = nil
		}
	}

	verbLemmas := []string{
		"be", "make", "live", "graduate", "survive", "offer", "bear", "lead", "join",
		"found", "work", "serve", "win", "announce", "buy", "sell", "meet", "visit",
		"support", "sign", "name", "own", "run", "direct", "teach", "marry", "play",
		"write", "acquire", "sue",
	}
	for _, lemma := range verbLemmas {
		var forms []string
		if lemma == "be" {
			forms = []string{"is", "was", "are", "been"}
		} else {
			forms = []string{lemma + "s", lemma + "ed", lemma + "ing"}
		}
		for _, f := range forms {
			addWord(f, lemma, "VERB")
		}
		v.verbs = append(v.verbs, forms)
	}

	nounLemmas := []string{
		"deal", "company", "president", "professor", "place", "city", "director",
		"chairman", "member", "board", "team", "agreement", "contract", "university",
		"government", "minister", "leader", "group", "bank", "court", "state", "war",
		"plan", "report", "official", "spokesman", "condition", "anonymity", "rights",
		"human", "student", "school", "election", "market", "share", "price", "year",
		"month", "week", "time", "people", "family", "house", "country", "law",
	}
	for _, lemma := range nounLemmas {
		addWord(lemma, lemma+"#n", "NOUN")
		addWord(lemma+"s", lemma+"#n", "NOUN")
		v.nouns = append(v.nouns, lemma, lemma+"s")
	}

	adjLemmas := []string{"great", "new", "former", "senior", "large", "public", "national",
		"federal", "political", "chief", "local", "major", "young", "old", "good"}
	for _, lemma := range adjLemmas {
		addWord(lemma, lemma+"#a", "ADJ")
		v.adjs = append(v.adjs, lemma)
	}

	advLemmas := []string{"also", "now", "recently", "formerly", "widely", "still", "once", "later"}
	for _, lemma := range advLemmas {
		addWord(lemma, lemma+"#r", "ADV")
		v.advs = append(v.advs, lemma)
	}

	dets := []string{"the", "a", "an", "this", "its", "his", "her"}
	for _, w := range dets {
		addWord(w, w+"#d", "DET")
		v.dets = append(v.dets, w)
	}

	preps := []string{"in", "of", "with", "from", "by", "to", "at", "for", "on", "as"}
	for _, w := range preps {
		addWord(w, w+"#p", "PREP")
		v.preps = append(v.preps, w)
	}

	// Entities generalize to their type and further to ENTITY.
	v.hierarchy["ENTITY"] = nil
	for _, typ := range []string{"PER", "ORG", "LOC"} {
		v.hierarchy[typ] = []string{"ENTITY"}
	}
	perNames := 120
	orgNames := 80
	locNames := 60
	for i := 0; i < perNames; i++ {
		name := fmt.Sprintf("per_%d", i)
		v.hierarchy[name] = []string{"PER"}
		v.entities = append(v.entities, name)
	}
	for i := 0; i < orgNames; i++ {
		name := fmt.Sprintf("org_%d", i)
		v.hierarchy[name] = []string{"ORG"}
		v.entities = append(v.entities, name)
	}
	for i := 0; i < locNames; i++ {
		name := fmt.Sprintf("loc_%d", i)
		v.hierarchy[name] = []string{"LOC"}
		v.entities = append(v.entities, name)
	}

	// Relational phrases placed between two entities. They reuse the verb,
	// noun and preposition vocabulary above (so the token→lemma→POS hierarchy
	// applies) and give constraints N1–N3 frequent patterns to find.
	addWord("born", "bear", "VERB")
	addWord("met", "meet", "VERB")
	addWord("acquired", "acquire", "VERB")
	addWord("sued", "sue", "VERB")
	addWord("teaches", "teach", "VERB")
	v.relations = [][]string{
		{"lives", "in"},
		{"works", "for"},
		{"is", "president", "of"},
		{"graduated", "from"},
		{"is", "survived", "by"},
		{"was", "born", "in"},
		{"is", "director", "of"},
		{"met", "with"},
		{"signed", "with"},
		{"plays", "for"},
		{"is", "member", "of"},
		{"joined"},
		{"leads"},
		{"acquired"},
		{"sued"},
		{"visited"},
		{"teaches", "at"},
		{"is", "chairman", "of"},
	}

	v.fillers = append(v.fillers, v.nouns...)
	v.fillers = append(v.fillers, v.adjs...)
	v.fillers = append(v.fillers, v.advs...)
	v.fillers = append(v.fillers, v.dets...)
	v.fillers = append(v.fillers, v.preps...)
	return v
}

// zipf picks an index in [0, n) with a skewed (roughly Zipfian) distribution.
func zipf(rng *rand.Rand, n int) int {
	u := rng.Float64()
	idx := int(u * u * u * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// NYTRaw generates the NYT-like corpus as raw sequences plus hierarchy.
func NYTRaw(cfg NYTConfig) ([][]string, seqdb.Hierarchy) {
	if cfg.NumSentences <= 0 {
		cfg.NumSentences = 1000
	}
	v := buildNYTVocabulary()
	rng := rand.New(rand.NewSource(cfg.Seed))
	raw := make([][]string, 0, cfg.NumSentences)

	entity := func() string { return v.entities[zipf(rng, len(v.entities))] }
	filler := func() string { return v.fillers[zipf(rng, len(v.fillers))] }
	verbForm := func() string {
		forms := v.verbs[zipf(rng, len(v.verbs))]
		return forms[rng.Intn(len(forms))]
	}
	appendNoise := func(seq []string, n int) []string {
		for i := 0; i < n; i++ {
			seq = append(seq, filler())
		}
		return seq
	}

	for i := 0; i < cfg.NumSentences; i++ {
		var seq []string
		switch r := rng.Float64(); {
		case r < 0.45:
			// Relational sentence: ENTITY relational-phrase ENTITY. Most
			// sentences use one of the fixed relation templates (skewed), the
			// rest compose a phrase randomly.
			seq = appendNoise(seq, rng.Intn(6))
			seq = append(seq, entity())
			if rng.Float64() < 0.8 {
				seq = append(seq, v.relations[zipf(rng, len(v.relations))]...)
			} else {
				seq = append(seq, verbForm())
				if rng.Float64() < 0.35 {
					seq = append(seq, v.nouns[zipf(rng, len(v.nouns))])
				}
				if rng.Float64() < 0.55 {
					seq = append(seq, v.preps[zipf(rng, len(v.preps))])
				}
			}
			seq = append(seq, entity())
			seq = appendNoise(seq, rng.Intn(10))
		case r < 0.6:
			// Copular sentence: ENTITY is DET? ADV? ADJ? NOUN.
			seq = appendNoise(seq, rng.Intn(4))
			seq = append(seq, entity(), "is")
			if rng.Float64() < 0.5 {
				seq = append(seq, v.dets[rng.Intn(len(v.dets))])
			}
			if rng.Float64() < 0.3 {
				seq = append(seq, v.advs[zipf(rng, len(v.advs))])
			}
			if rng.Float64() < 0.6 {
				seq = append(seq, v.adjs[zipf(rng, len(v.adjs))])
			}
			seq = append(seq, v.nouns[zipf(rng, len(v.nouns))])
			seq = appendNoise(seq, rng.Intn(8))
		default:
			// Plain sentence.
			n := 6 + rng.Intn(25)
			seq = appendNoise(seq, n)
			if rng.Float64() < 0.3 {
				seq = append(seq, entity())
				seq = appendNoise(seq, rng.Intn(5))
			}
		}
		if len(seq) == 0 {
			seq = append(seq, filler())
		}
		raw = append(raw, seq)
	}
	return raw, v.hierarchy
}

// NYT builds the NYT-like database.
func NYT(cfg NYTConfig) (*seqdb.Database, error) {
	raw, h := NYTRaw(cfg)
	return seqdb.Build(raw, h)
}

// ---------------------------------------------------------------------------
// AMZN-like market-basket data
// ---------------------------------------------------------------------------

// AmazonConfig configures the AMZN-like generator.
type AmazonConfig struct {
	// NumCustomers is the number of input sequences (one per customer).
	NumCustomers int
	// Seed makes the dataset deterministic.
	Seed int64
	// Forest restricts the hierarchy to a forest (each item has at most one
	// parent), mirroring the AMZN-F variant of the paper.
	Forest bool
}

type amazonCatalog struct {
	hierarchy  seqdb.Hierarchy
	byCategory map[string][]string
	categories map[string][]string // department -> categories
	bookChains [][]string
}

func buildAmazonCatalog(forest bool, productsPerCategory int) *amazonCatalog {
	c := &amazonCatalog{
		hierarchy:  seqdb.Hierarchy{},
		byCategory: map[string][]string{},
		categories: map[string][]string{},
	}
	addDepartment := func(dep string) { c.hierarchy[dep] = nil }
	addCategory := func(cat, dep string) {
		c.hierarchy[cat] = []string{dep}
		c.categories[dep] = append(c.categories[dep], cat)
	}
	addProduct := func(name, cat string, extra ...string) {
		parents := []string{cat}
		if !forest {
			parents = append(parents, extra...)
		}
		c.hierarchy[name] = parents
		c.byCategory[cat] = append(c.byCategory[cat], name)
	}

	addDepartment("Electr")
	addDepartment("Book")
	addDepartment("MusicInstr")
	addDepartment("Home")
	addDepartment("Clothing")
	if !forest {
		c.hierarchy["Accessories"] = []string{"Electr"}
	}

	electrCats := []string{"MP3Players", "Headphones", "Mice", "Keyboards", "DigitalCamera",
		"Lenses", "Tripods", "Batteries", "SDCards", "Speakers"}
	for _, cat := range electrCats {
		addCategory(cat, "Electr")
	}
	bookCats := []string{"Fantasy", "SciFi", "Mystery", "Cooking"}
	for _, cat := range bookCats {
		addCategory(cat, "Book")
	}
	musicCats := []string{"Guitars", "Drums", "BagsCases", "Pianos"}
	for _, cat := range musicCats {
		addCategory(cat, "MusicInstr")
	}
	homeCats := []string{"Kitchen", "Furniture", "Garden"}
	for _, cat := range homeCats {
		addCategory(cat, "Home")
	}
	clothCats := []string{"Shoes", "Shirts", "Jackets"}
	for _, cat := range clothCats {
		addCategory(cat, "Clothing")
	}

	accessoryCats := map[string]bool{"Lenses": true, "Tripods": true, "Batteries": true,
		"SDCards": true, "Headphones": true, "BagsCases": false}
	for dep, cats := range c.categories {
		for _, cat := range cats {
			for i := 0; i < productsPerCategory; i++ {
				name := fmt.Sprintf("p_%s_%d", cat, i)
				if dep == "Electr" && accessoryCats[cat] && i%3 == 0 {
					addProduct(name, cat, "Accessories")
				} else {
					addProduct(name, cat)
				}
			}
		}
	}

	// Named book series so that constraint A2 can find sequel patterns.
	c.bookChains = [][]string{
		{"a-game-of-thrones", "a-clash-of-kings", "a-storm-of-swords", "a-feast-for-crows"},
		{"dune", "dune-messiah", "children-of-dune"},
		{"foundation", "foundation-and-empire", "second-foundation"},
	}
	for _, chain := range c.bookChains {
		for _, title := range chain {
			addProduct(title, "Fantasy")
		}
	}
	return c
}

// AmazonRaw generates the AMZN-like dataset as raw sequences plus hierarchy.
func AmazonRaw(cfg AmazonConfig) ([][]string, seqdb.Hierarchy) {
	if cfg.NumCustomers <= 0 {
		cfg.NumCustomers = 1000
	}
	c := buildAmazonCatalog(cfg.Forest, 25)
	rng := rand.New(rand.NewSource(cfg.Seed))
	departments := []string{"Electr", "Electr", "Book", "MusicInstr", "Home", "Clothing"}

	pick := func(cat string) string {
		prods := c.byCategory[cat]
		return prods[zipf(rng, len(prods))]
	}
	raw := make([][]string, 0, cfg.NumCustomers)
	for i := 0; i < cfg.NumCustomers; i++ {
		var seq []string
		dep := departments[rng.Intn(len(departments))]
		// Sequence length: short on average with a heavy tail.
		length := 1 + rng.Intn(4)
		if rng.Float64() < 0.15 {
			length += rng.Intn(12)
		}
		if rng.Float64() < 0.02 {
			length += rng.Intn(40)
		}
		cats := c.categories[dep]
		for len(seq) < length {
			switch {
			case dep == "Electr" && rng.Float64() < 0.3:
				// Camera purchase followed by accessories (constraint A3).
				seq = append(seq, pick("DigitalCamera"))
				for _, acc := range []string{"Lenses", "Tripods", "Batteries", "SDCards"} {
					if rng.Float64() < 0.4 {
						seq = append(seq, pick(acc))
					}
				}
			case dep == "Electr" && rng.Float64() < 0.3:
				// MP3 player followed by headphones (constraint A1).
				seq = append(seq, pick("MP3Players"))
				if rng.Float64() < 0.6 {
					seq = append(seq, pick("Headphones"))
				}
			case dep == "Book" && rng.Float64() < 0.35:
				// Book series read in order (constraint A2).
				chain := c.bookChains[rng.Intn(len(c.bookChains))]
				start := rng.Intn(len(chain) - 1)
				end := start + 1 + rng.Intn(len(chain)-start-1)
				seq = append(seq, chain[start:end+1]...)
			case dep == "MusicInstr" && rng.Float64() < 0.4:
				// Instrument followed by bags & cases (constraint A4).
				seq = append(seq, pick(cats[rng.Intn(len(cats))]))
				seq = append(seq, pick("BagsCases"))
			default:
				seq = append(seq, pick(cats[rng.Intn(len(cats))]))
			}
			// Occasional purchase from an unrelated department (noise).
			if rng.Float64() < 0.2 {
				other := departments[rng.Intn(len(departments))]
				oc := c.categories[other]
				seq = append(seq, pick(oc[rng.Intn(len(oc))]))
			}
		}
		raw = append(raw, seq)
	}
	return raw, c.hierarchy
}

// Amazon builds the AMZN-like database.
func Amazon(cfg AmazonConfig) (*seqdb.Database, error) {
	raw, h := AmazonRaw(cfg)
	return seqdb.Build(raw, h)
}

// ---------------------------------------------------------------------------
// CW-like plain text corpus (no hierarchy)
// ---------------------------------------------------------------------------

// ClueWebConfig configures the CW-like generator.
type ClueWebConfig struct {
	// NumSentences is the number of input sequences.
	NumSentences int
	// Seed makes the dataset deterministic.
	Seed int64
	// VocabularySize is the number of distinct words (default 5000).
	VocabularySize int
}

// ClueWebRaw generates the CW-like corpus (no hierarchy).
func ClueWebRaw(cfg ClueWebConfig) ([][]string, seqdb.Hierarchy) {
	if cfg.NumSentences <= 0 {
		cfg.NumSentences = 1000
	}
	if cfg.VocabularySize <= 0 {
		cfg.VocabularySize = 5000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := make([]string, cfg.VocabularySize)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("w%d", i)
	}
	// Frequent collocations that T2 n-gram mining should rediscover.
	collocations := [][]string{
		{"most", "of", "the"},
		{"spoke", "on", "condition", "of", "anonymity"},
		{"as", "well", "as"},
		{"one", "of", "the", "most"},
		{"according", "to", "the"},
	}
	h := seqdb.Hierarchy{}
	raw := make([][]string, 0, cfg.NumSentences)
	for i := 0; i < cfg.NumSentences; i++ {
		length := 8 + rng.Intn(24)
		var seq []string
		for len(seq) < length {
			if rng.Float64() < 0.2 {
				seq = append(seq, collocations[zipf(rng, len(collocations))]...)
			} else {
				seq = append(seq, vocab[zipf(rng, len(vocab))])
			}
		}
		raw = append(raw, seq)
	}
	return raw, h
}

// ClueWeb builds the CW-like database.
func ClueWeb(cfg ClueWebConfig) (*seqdb.Database, error) {
	raw, h := ClueWebRaw(cfg)
	return seqdb.Build(raw, h)
}
