package datagen_test

import (
	"reflect"
	"testing"

	"seqmine/internal/datagen"
	"seqmine/internal/fst"
)

func TestNYTGenerator(t *testing.T) {
	db, err := datagen.NYT(datagen.NYTConfig{NumSentences: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.NumSequences != 500 {
		t.Errorf("NumSequences = %d, want 500", s.NumSequences)
	}
	if s.MeanLength < 5 || s.MeanLength > 40 {
		t.Errorf("implausible mean sentence length %f", s.MeanLength)
	}
	// Hierarchy items referenced by the constraints must exist.
	for _, name := range []string{"ENTITY", "PER", "ORG", "LOC", "VERB", "NOUN", "PREP", "DET", "ADV", "ADJ", "be"} {
		if _, ok := db.Dict.Fid(name); !ok {
			t.Errorf("item %q missing from NYT-like dictionary", name)
		}
	}
	// POS tags must never appear literally in the data but must have positive
	// document frequency through their descendants.
	if db.Dict.DocFreq(db.Dict.MustFid("VERB")) == 0 {
		t.Error("VERB should have positive document frequency")
	}
	if db.Dict.DocFreq(db.Dict.MustFid("ENTITY")) == 0 {
		t.Error("ENTITY should have positive document frequency")
	}
	// Hierarchy depth: token -> lemma -> POS gives two proper ancestors.
	if db.Dict.MaxAncestors() < 2 {
		t.Errorf("MaxAncestors = %d, want >= 2", db.Dict.MaxAncestors())
	}
	// The text-mining constraints must compile against this dictionary and
	// match at least one sentence.
	for _, pat := range []string{
		".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*",
		".*(ENTITY^ be^=) DET? [ADV?] [ADJ?] (NOUN).*",
		".*(.^){3} NOUN.*",
	} {
		f, err := fst.Compile(pat, db.Dict)
		if err != nil {
			t.Errorf("Compile(%q): %v", pat, err)
			continue
		}
		matched := 0
		for _, T := range db.Sequences {
			if f.Accepts(T) {
				matched++
			}
		}
		if matched == 0 {
			t.Errorf("constraint %q matches no generated sentence", pat)
		}
	}
}

func TestNYTDeterministic(t *testing.T) {
	a, _ := datagen.NYTRaw(datagen.NYTConfig{NumSentences: 50, Seed: 7})
	b, _ := datagen.NYTRaw(datagen.NYTConfig{NumSentences: 50, Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Error("NYT generator must be deterministic for a fixed seed")
	}
	c, _ := datagen.NYTRaw(datagen.NYTConfig{NumSentences: 50, Seed: 8})
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should produce different data")
	}
}

func TestAmazonGenerator(t *testing.T) {
	db, err := datagen.Amazon(datagen.AmazonConfig{NumCustomers: 500, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.NumSequences != 500 {
		t.Errorf("NumSequences = %d, want 500", s.NumSequences)
	}
	if s.MeanLength < 2 || s.MeanLength > 15 {
		t.Errorf("implausible mean review-sequence length %f", s.MeanLength)
	}
	for _, name := range []string{"Electr", "Book", "MusicInstr", "DigitalCamera", "Headphones", "BagsCases"} {
		if _, ok := db.Dict.Fid(name); !ok {
			t.Errorf("item %q missing from AMZN-like dictionary", name)
		}
	}
	// The DAG variant has products with two parents, so mean ancestors exceeds
	// the forest variant's.
	forest, err := datagen.Amazon(datagen.AmazonConfig{NumCustomers: 500, Seed: 2, Forest: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Dict.MeanAncestors() <= forest.Dict.MeanAncestors() {
		t.Errorf("DAG hierarchy should have more ancestors on average: %f vs %f",
			db.Dict.MeanAncestors(), forest.Dict.MeanAncestors())
	}
	// Recommendation constraints must compile and match.
	for _, pat := range []string{
		".*(Electr^)[.{0,2}(Electr^)]{1,4}.*",
		".*(Book)[.{0,2}(Book)]{1,4}.*",
		".*DigitalCamera[.{0,3}(.^)]{1,4}.*",
		".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*",
	} {
		f, err := fst.Compile(pat, db.Dict)
		if err != nil {
			t.Errorf("Compile(%q): %v", pat, err)
			continue
		}
		matched := 0
		for _, T := range db.Sequences {
			if f.Accepts(T) {
				matched++
			}
		}
		if matched == 0 {
			t.Errorf("constraint %q matches no generated customer sequence", pat)
		}
	}
}

func TestClueWebGenerator(t *testing.T) {
	db, err := datagen.ClueWeb(datagen.ClueWebConfig{NumSentences: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.NumSequences != 300 {
		t.Errorf("NumSequences = %d, want 300", s.NumSequences)
	}
	if s.MaxAncestors != 0 {
		t.Errorf("CW-like data must have no hierarchy, MaxAncestors = %d", s.MaxAncestors)
	}
	if s.MeanLength < 8 || s.MeanLength > 40 {
		t.Errorf("implausible mean sentence length %f", s.MeanLength)
	}
	// The collocation "most of the" must be reasonably frequent so that T2
	// n-gram mining finds it.
	most := db.Dict.MustFid("most")
	if db.Dict.DocFreq(most) < 20 {
		t.Errorf("collocation word unexpectedly rare: f(most) = %d", db.Dict.DocFreq(most))
	}
}

func TestGeneratorsDefaultConfig(t *testing.T) {
	if _, err := datagen.NYT(datagen.NYTConfig{}); err != nil {
		t.Error(err)
	}
	if _, err := datagen.Amazon(datagen.AmazonConfig{}); err != nil {
		t.Error(err)
	}
	if _, err := datagen.ClueWeb(datagen.ClueWebConfig{}); err != nil {
		t.Error(err)
	}
}
