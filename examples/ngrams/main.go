// N-gram statistics: the "Google n-gram corpus" use case. On the synthetic
// CW-like corpus (no hierarchy) we mine contiguous n-grams with the
// traditional constraint T2(sigma, 0, 5) — a task that specialized engines
// like MG-FSM or Suffix-sigma support — and contrast it with a flexible
// variant that skips stop words, which only constraint-based miners can
// express.
//
// Run with:
//
//	go run ./examples/ngrams
package main

import (
	"fmt"
	"log"

	"seqmine"
)

func main() {
	fmt.Println("generating synthetic CW-like corpus (30k sentences)...")
	db, err := seqmine.GenerateClueWebLike(30000, 3)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.Stats()
	fmt.Printf("corpus: %d sentences, %.1f words/sentence, %d distinct words\n\n",
		stats.NumSequences, stats.MeanLength, stats.UniqueItems)

	// Contiguous n-grams of length 2..5 (the T2 constraint of the paper, with
	// the gap context written explicitly).
	const ngrams = ".*(.)[.{0,0}(.)]{1,4}.*"
	result, err := seqmine.Mine(db, ngrams, 200, seqmine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T2(200,0,5): %d frequent n-grams\n", len(result.Patterns))
	longest := result.Patterns
	for i, p := range longest {
		if i >= 10 {
			break
		}
		fmt.Printf("  %7d  %q\n", p.Freq, seqmine.DecodePattern(db, p))
	}
	fmt.Println()

	// A flexible variant: n-grams that may skip one of the extremely frequent
	// words "of" / "the" in the middle — not expressible with gap constraints
	// alone.
	const skipStop = ".*(.)[[of|the]{0,1}(.)]{1,3}.*"
	result2, err := seqmine.Mine(db, skipStop, 200, seqmine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flexible variant (skipping 'of'/'the'): %d patterns\n", len(result2.Patterns))
	for i, p := range result2.Patterns {
		if i >= 10 {
			break
		}
		fmt.Printf("  %7d  %q\n", p.Freq, seqmine.DecodePattern(db, p))
	}
}
