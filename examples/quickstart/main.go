// Quickstart: mine the running example of the paper (Fig. 2) with a flexible
// subsequence constraint.
//
// The database contains five shopping-basket-like sequences over items
// a1, a2, b, c, d, e where a1 and a2 generalize to A. The constraint
// ".*(A)[(.^)|.]*(b).*" asks for subsequences that start with A (or a
// descendant of A) and end with b, optionally generalizing the items in
// between. With minimum support 2 the frequent sequences are
// "a1 a1 b" (2), "a1 A b" (2) and "a1 b" (3).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"seqmine"
)

func main() {
	sequences := [][]string{
		{"a1", "c", "d", "c", "b"},
		{"e", "e", "a1", "e", "a1", "e", "b"},
		{"c", "d", "c", "b"},
		{"a2", "d", "b"},
		{"a1", "a1", "b"},
	}
	hierarchy := seqmine.Hierarchy{
		"a1": {"A"},
		"a2": {"A"},
	}

	db, err := seqmine.BuildDatabase(sequences, hierarchy)
	if err != nil {
		log.Fatal(err)
	}

	// Mine with the default algorithm (D-SEQ, all enhancements enabled).
	result, err := seqmine.Mine(db, ".*(A)[(.^)|.]*(b).*", 2, seqmine.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("frequent subsequences (support >= 2):")
	for _, p := range result.Patterns {
		fmt.Printf("  %-10s support %d\n", seqmine.DecodePattern(db, p), p.Freq)
	}

	// The same task with the sequential reference miner gives identical
	// results.
	opts := seqmine.DefaultOptions()
	opts.Algorithm = seqmine.SequentialDFS
	sequential, err := seqmine.Mine(db, ".*(A)[(.^)|.]*(b).*", 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential DESQ-DFS found the same %d sequences\n", len(sequential.Patterns))
	fmt.Printf("distributed run shuffled %d bytes over %d partitions\n",
		result.Metrics.ShuffleBytes, result.Metrics.Partitions)
}
