// Relational-phrase mining: the open information extraction use case that
// motivates the paper's introduction (cf. PATTY / ReVerb). On the synthetic
// NYT-like corpus we mine
//
//   - N1: relational phrases between two entities, e.g. "lives in",
//     "graduated from";
//   - N2: typed relational phrases, where the entities generalize to their
//     types, e.g. "PER was born in LOC";
//   - N3: copular relations, e.g. "PER be professor".
//
// An FSM algorithm without flexible constraints cannot express these tasks:
// it would either report millions of non-relational n-grams or lose the
// entity context.
//
// Run with:
//
//	go run ./examples/relphrases
package main

import (
	"fmt"
	"log"

	"seqmine"
)

func main() {
	fmt.Println("generating synthetic NYT-like corpus (20k sentences)...")
	db, err := seqmine.GenerateNYTLike(20000, 1)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.Stats()
	fmt.Printf("corpus: %d sentences, %.1f items/sentence, %d dictionary items\n\n",
		stats.NumSequences, stats.MeanLength, stats.HierarchyItems)

	tasks := []struct {
		name    string
		pattern string
		sigma   int64
	}{
		{"N1: relational phrases between entities", ".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*", 20},
		{"N2: typed relational phrases", ".*(ENTITY^ VERB+ NOUN+? PREP? ENTITY^).*", 50},
		{"N3: copular relations", ".*(ENTITY^ be^=) DET? (ADV? ADJ? NOUN).*", 20},
	}
	opts := seqmine.DefaultOptions()
	for _, task := range tasks {
		result, err := seqmine.Mine(db, task.pattern, task.sigma, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (sigma=%d, %d patterns)\n", task.name, task.sigma, len(result.Patterns))
		for i, p := range result.Patterns {
			if i >= 8 {
				break
			}
			fmt.Printf("  %7d  %s\n", p.Freq, seqmine.DecodePattern(db, p))
		}
		fmt.Println()
	}
}
