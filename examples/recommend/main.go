// Order-aware recommendation: mine purchase patterns from the synthetic
// AMZN-like market-basket data using hierarchy-constrained subsequence
// constraints (constraints A1-A4 of the paper), e.g. which electronics
// categories are bought together in order, which accessories follow a digital
// camera, and which book sequels are read in order.
//
// Run with:
//
//	go run ./examples/recommend
package main

import (
	"fmt"
	"log"

	"seqmine"
)

func main() {
	fmt.Println("generating synthetic AMZN-like review data (15k customers)...")
	db, err := seqmine.GenerateAmazonLike(15000, 7, false)
	if err != nil {
		log.Fatal(err)
	}
	stats := db.Stats()
	fmt.Printf("dataset: %d customers, %.1f products/customer, hierarchy of %d items (up to %d ancestors)\n\n",
		stats.NumSequences, stats.MeanLength, stats.HierarchyItems, stats.MaxAncestors)

	tasks := []struct {
		name    string
		pattern string
		sigma   int64
	}{
		{"A1: electronics purchases (generalized, max gap 2)", ".*(Electr^)[.{0,2}(Electr^)]{1,4}.*", 40},
		{"A2: book sequences", ".*(Book)[.{0,2}(Book)]{1,4}.*", 10},
		{"A3: what follows a digital camera", ".*DigitalCamera[.{0,3}(.^)]{1,4}.*", 10},
		{"A4: musical instruments", ".*(MusicInstr^)[.{0,2}(MusicInstr^)]{1,4}.*", 10},
	}

	// Use D-CAND here: these constraints are selective (few candidates per
	// customer), which is the regime where the candidate representation wins.
	opts := seqmine.DefaultOptions()
	opts.Algorithm = seqmine.DCand
	for _, task := range tasks {
		result, err := seqmine.Mine(db, task.pattern, task.sigma, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (sigma=%d, %d patterns, shuffled %d bytes)\n",
			task.name, task.sigma, len(result.Patterns), result.Metrics.ShuffleBytes)
		for i, p := range result.Patterns {
			if i >= 6 {
				break
			}
			fmt.Printf("  %6d  %s\n", p.Freq, seqmine.DecodePattern(db, p))
		}
		fmt.Println()
	}
}
