package seqmine_test

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"seqmine"
	"seqmine/internal/paperex"
)

// runningExampleDB builds the paper's running example through the public API.
func runningExampleDB(t *testing.T) *seqmine.Database {
	t.Helper()
	h := seqmine.Hierarchy{"a1": {"A"}, "a2": {"A"}, "A": nil, "b": nil, "c": nil, "d": nil, "e": nil}
	db, err := seqmine.BuildDatabase(paperex.RawDB(), h)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestMineAllAlgorithmsAgree(t *testing.T) {
	db := runningExampleDB(t)
	want := paperex.ExpectedFrequent()
	algos := []seqmine.Algorithm{
		seqmine.SequentialDFS, seqmine.SequentialCount,
		seqmine.DSeq, seqmine.DCand, seqmine.Naive, seqmine.SemiNaive,
	}
	for _, algo := range algos {
		opts := seqmine.DefaultOptions()
		opts.Algorithm = algo
		opts.Workers = 2
		res, err := seqmine.Mine(db, paperex.PatternExpression, paperex.Sigma, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		got := seqmine.PatternsAsMap(db, res.Patterns)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v = %v, want %v", algo, got, want)
		}
	}
}

func TestMineErrors(t *testing.T) {
	db := runningExampleDB(t)
	if _, err := seqmine.Mine(db, "((", 1, seqmine.DefaultOptions()); err == nil {
		t.Error("expected parse error")
	}
	if _, err := seqmine.Mine(db, "(unknown-item)", 1, seqmine.DefaultOptions()); err == nil {
		t.Error("expected unknown-item error")
	}
	if _, err := seqmine.Mine(db, "(b)", 0, seqmine.DefaultOptions()); err == nil {
		t.Error("expected error for non-positive sigma")
	}
	opts := seqmine.DefaultOptions()
	opts.Algorithm = seqmine.Algorithm(99)
	if _, err := seqmine.Mine(db, "(b)", 1, opts); err == nil {
		t.Error("expected error for unknown algorithm")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[seqmine.Algorithm]string{
		seqmine.SequentialDFS:   "DESQ-DFS",
		seqmine.SequentialCount: "DESQ-COUNT",
		seqmine.DSeq:            "D-SEQ",
		seqmine.DCand:           "D-CAND",
		seqmine.Naive:           "Naive",
		seqmine.SemiNaive:       "SemiNaive",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
	if seqmine.Algorithm(42).String() == "" {
		t.Error("unknown algorithm should still render")
	}
}

func TestCompileConstraintAndMatches(t *testing.T) {
	db := runningExampleDB(t)
	c, err := seqmine.CompileConstraint(db, paperex.PatternExpression)
	if err != nil {
		t.Fatal(err)
	}
	if c.Expression() != paperex.PatternExpression {
		t.Errorf("Expression() = %q", c.Expression())
	}
	// T1, T2, T4, T5 match; T3 does not.
	if got := seqmine.CountMatches(db, c); got != 4 {
		t.Errorf("CountMatches = %d, want 4", got)
	}
	res, err := seqmine.MineConstraint(db, c, paperex.Sigma, seqmine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Errorf("expected 3 frequent patterns, got %v", seqmine.PatternsAsMap(db, res.Patterns))
	}
	if res.Metrics.ShuffleRecords == 0 {
		t.Error("distributed metrics should be populated")
	}
	// DecodePattern renders item names.
	if s := seqmine.DecodePattern(db, res.Patterns[0]); s == "" {
		t.Error("DecodePattern returned an empty string")
	}
}

func TestReadDatabaseFiles(t *testing.T) {
	dir := t.TempDir()
	seqPath := filepath.Join(dir, "sequences.txt")
	hierPath := filepath.Join(dir, "hierarchy.txt")
	seqData := "a1 c d c b\ne e a1 e a1 e b\nc d c b\na2 d b\na1 a1 b\n"
	hierData := "a1\tA\na2\tA\n"
	if err := os.WriteFile(seqPath, []byte(seqData), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hierPath, []byte(hierData), 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := seqmine.ReadDatabaseFiles(seqPath, hierPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := seqmine.Mine(db, paperex.PatternExpression, paperex.Sigma, seqmine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := seqmine.PatternsAsMap(db, res.Patterns); !reflect.DeepEqual(got, paperex.ExpectedFrequent()) {
		t.Errorf("file-based mining = %v, want %v", got, paperex.ExpectedFrequent())
	}
	// Missing files are reported.
	if _, err := seqmine.ReadDatabaseFiles(filepath.Join(dir, "nope.txt"), ""); err == nil {
		t.Error("expected error for missing sequence file")
	}
	if _, err := seqmine.ReadDatabaseFiles(seqPath, filepath.Join(dir, "nope.txt")); err == nil {
		t.Error("expected error for missing hierarchy file")
	}
}

func TestGenerators(t *testing.T) {
	nyt, err := seqmine.GenerateNYTLike(100, 1)
	if err != nil || nyt.NumSequences() != 100 {
		t.Fatalf("GenerateNYTLike: %v, %d sequences", err, nyt.NumSequences())
	}
	amzn, err := seqmine.GenerateAmazonLike(100, 1, false)
	if err != nil || amzn.NumSequences() != 100 {
		t.Fatalf("GenerateAmazonLike: %v", err)
	}
	cw, err := seqmine.GenerateClueWebLike(100, 1)
	if err != nil || cw.NumSequences() != 100 {
		t.Fatalf("GenerateClueWebLike: %v", err)
	}
	// A realistic end-to-end run on generated data: relational phrases
	// between entities.
	res, err := seqmine.Mine(nyt, ".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*", 5, seqmine.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Error("expected some frequent relational phrases on the NYT-like data")
	}
}

func TestServiceMine(t *testing.T) {
	db := runningExampleDB(t)
	svc := seqmine.NewService(seqmine.ServiceOptions{CacheSize: 16, Workers: 2})
	if err := svc.RegisterDatabase("ex", db); err != nil {
		t.Fatal(err)
	}

	want := paperex.ExpectedFrequent()
	for _, algo := range []seqmine.Algorithm{seqmine.SequentialDFS, seqmine.DSeq} {
		opts := seqmine.DefaultOptions()
		opts.Algorithm = algo
		res, qm, err := svc.Mine(context.Background(), "ex", paperex.PatternExpression, paperex.Sigma, opts)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if got := seqmine.PatternsAsMap(db, res.Patterns); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: got %v, want %v", algo, got, want)
		}
		if algo == seqmine.SequentialDFS && qm.CacheHit {
			t.Error("first query must not be a cache hit")
		}
		if algo == seqmine.DSeq && !qm.CacheHit {
			t.Error("second query with the same expression must hit the compiled-pattern cache")
		}
	}

	m := svc.Metrics()
	if m.Queries != 2 || m.CacheHits != 1 {
		t.Errorf("service metrics: queries=%d cacheHits=%d, want 2 and 1", m.Queries, m.CacheHits)
	}
	if !svc.RemoveDataset("ex") {
		t.Error("RemoveDataset should report the dataset existed")
	}
	if _, _, err := svc.Mine(context.Background(), "ex", paperex.PatternExpression, paperex.Sigma, seqmine.DefaultOptions()); err == nil {
		t.Error("mining a removed dataset should fail")
	}
}
