module seqmine

go 1.24
