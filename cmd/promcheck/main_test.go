package main

import "testing"

func TestBoundFlags(t *testing.T) {
	var b boundFlags
	if err := b.Set("seqmine_admission_queue_depth_max=16"); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("seqmine_admission_shed_total=1.5"); err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0].name != "seqmine_admission_queue_depth_max" || b[0].value != 16 || b[1].value != 1.5 {
		t.Fatalf("parsed = %+v", b)
	}
	if b.String() == "" {
		t.Fatal("String() empty")
	}
	for _, bad := range []string{"noequals", "=1", "name=", "name=abc"} {
		if err := b.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestRequireFlags(t *testing.T) {
	var r requireFlags
	if err := r.Set("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Set("b"); err != nil {
		t.Fatal(err)
	}
	if r.String() != "a b" {
		t.Fatalf("String() = %q", r.String())
	}
}

func TestHasPrefixSeries(t *testing.T) {
	series := map[string]int{
		"seqmine_queries_total":        2,
		"seqmine_stage_seconds_bucket": 10,
		"seqmine_stage_seconds_sum":    1,
		"seqmine_stage_seconds_count":  1,
	}
	if !hasPrefixSeries(series, "seqmine_queries_total") {
		t.Fatal("exact name not found")
	}
	if !hasPrefixSeries(series, "seqmine_stage_seconds") {
		t.Fatal("histogram family not found via its suffixes")
	}
	if hasPrefixSeries(series, "seqmine_missing") {
		t.Fatal("absent family reported present")
	}
}
