// Command promcheck validates a Prometheus text exposition (format 0.0.4),
// as served by seqmined and seqmine-worker at GET /metrics?format=prometheus.
// It reads the exposition from stdin (or a file argument), fails on malformed
// lines, label syntax errors, counter regressions within the scrape, or
// histogram series whose _count disagrees with the +Inf bucket, and can
// assert that specific metric families are present and populated, or that
// sample values respect bounds:
//
//	curl -s 'localhost:9090/metrics?format=prometheus' |
//	    promcheck -require seqmine_worker_stage_seconds \
//	        -max seqmine_admission_queue_depth_max=16 \
//	        -min seqmine_admission_shed_total=1
//
// CI uses it in the chaos and overload smoke jobs to gate the exposition
// endpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"seqmine/internal/obs"
)

// requireFlags collects repeated -require flags.
type requireFlags []string

func (r *requireFlags) String() string     { return strings.Join(*r, " ") }
func (r *requireFlags) Set(v string) error { *r = append(*r, v); return nil }

// boundFlags collects repeated name=value bound assertions.
type boundFlags []bound

type bound struct {
	name  string
	value float64
}

func (b *boundFlags) String() string {
	parts := make([]string, len(*b))
	for i, x := range *b {
		parts[i] = fmt.Sprintf("%s=%g", x.name, x.value)
	}
	return strings.Join(parts, " ")
}

func (b *boundFlags) Set(v string) error {
	name, val, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", v)
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad bound value in %q: %w", v, err)
	}
	*b = append(*b, bound{name: name, value: f})
	return nil
}

func main() {
	var requires requireFlags
	var maxBounds, minBounds boundFlags
	flag.Var(&requires, "require", "fail unless a series with this metric name prefix is present (repeatable)")
	flag.Var(&maxBounds, "max", "name=value: fail when any sample of the named series exceeds value, or the series is absent (repeatable)")
	flag.Var(&minBounds, "min", "name=value: fail unless some sample of the named series reaches value (repeatable)")
	quiet := flag.Bool("q", false, "print nothing on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	stats, err := obs.ValidateExposition(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	for _, want := range requires {
		if !hasPrefixSeries(stats.SeriesByName, want) {
			fatal(fmt.Errorf("%s: no series named %s*", name, want))
		}
	}
	for _, b := range maxBounds {
		got, ok := stats.MaxByName[b.name]
		if !ok {
			fatal(fmt.Errorf("%s: -max %s=%g: series absent, bound cannot be verified", name, b.name, b.value))
		}
		if got > b.value {
			fatal(fmt.Errorf("%s: %s reached %g, above the %g bound", name, b.name, got, b.value))
		}
	}
	for _, b := range minBounds {
		got, ok := stats.MaxByName[b.name]
		if !ok {
			fatal(fmt.Errorf("%s: -min %s=%g: series absent", name, b.name, b.value))
		}
		if got < b.value {
			fatal(fmt.Errorf("%s: %s only reached %g, below the %g floor", name, b.name, got, b.value))
		}
	}
	if !*quiet {
		fmt.Printf("promcheck: %d samples across %d series names ok\n", stats.Samples, len(stats.SeriesByName))
	}
}

// hasPrefixSeries reports whether any series name equals want or extends it
// with a histogram suffix component (_bucket/_sum/_count).
func hasPrefixSeries(series map[string]int, want string) bool {
	if series[want] > 0 {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if series[want+suffix] > 0 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
