// Command promcheck validates a Prometheus text exposition (format 0.0.4),
// as served by seqmined and seqmine-worker at GET /metrics?format=prometheus.
// It reads the exposition from stdin (or a file argument), fails on malformed
// lines, label syntax errors, counter regressions within the scrape, or
// histogram series whose _count disagrees with the +Inf bucket, and can
// assert that specific metric families are present and populated:
//
//	curl -s 'localhost:9090/metrics?format=prometheus' |
//	    promcheck -require seqmine_worker_stage_seconds
//
// CI uses it in the chaos smoke job to gate the exposition endpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"seqmine/internal/obs"
)

// requireFlags collects repeated -require flags.
type requireFlags []string

func (r *requireFlags) String() string     { return strings.Join(*r, " ") }
func (r *requireFlags) Set(v string) error { *r = append(*r, v); return nil }

func main() {
	var requires requireFlags
	flag.Var(&requires, "require", "fail unless a series with this metric name prefix is present (repeatable)")
	quiet := flag.Bool("q", false, "print nothing on success")
	flag.Parse()

	var in io.Reader = os.Stdin
	name := "<stdin>"
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "promcheck: at most one input file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in, name = f, flag.Arg(0)
	}

	stats, err := obs.ValidateExposition(in)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	for _, want := range requires {
		if !hasPrefixSeries(stats.SeriesByName, want) {
			fatal(fmt.Errorf("%s: no series named %s*", name, want))
		}
	}
	if !*quiet {
		fmt.Printf("promcheck: %d samples across %d series names ok\n", stats.Samples, len(stats.SeriesByName))
	}
}

// hasPrefixSeries reports whether any series name equals want or extends it
// with a histogram suffix component (_bucket/_sum/_count).
func hasPrefixSeries(series map[string]int, want string) bool {
	if series[want] > 0 {
		return true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if series[want+suffix] > 0 {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
