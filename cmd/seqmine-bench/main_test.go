package main

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"seqmine/internal/benchcmp"
)

// stubDaemon serves a canned /mine answer, optionally shedding every Nth
// request with (or without) a Retry-After header.
func stubDaemon(t *testing.T, shedEvery int64, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var served atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := served.Add(1)
		if shedEvery > 0 && n%shedEvery == 0 {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded"}`))
			return
		}
		var req mineRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"patterns": []map[string]any{
				{"items": []string{"a", req.Pattern}, "freq": 3},
				{"items": []string{"b"}, "freq": 2},
			},
			"total": 2,
		})
	}))
	t.Cleanup(srv.Close)
	return srv, &served
}

func testBench(addr string) *bench {
	return &bench{
		addr:      addr,
		dataset:   "bench",
		timeoutMS: 5000,
		client:    &http.Client{Timeout: 10 * time.Second},
	}
}

func TestRunClosedLoop(t *testing.T) {
	srv, served := stubDaemon(t, 0, "")
	b := testBench(srv.URL)
	wl := workload{name: "w", exprs: []string{"e1", "e2"}, sigma: 5}
	res, err := b.run(wl, 200*time.Millisecond, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || res.Errors != 0 || res.Shed != 0 {
		t.Fatalf("result = %+v, want successful requests only", res)
	}
	if res.P50MS <= 0 || res.P99MS < res.P50MS || res.ThroughputRPS <= 0 {
		t.Fatalf("percentiles = %+v", res)
	}
	if res.ResultHash == "" {
		t.Fatal("no combined result hash")
	}
	if served.Load() < int64(res.Requests) {
		t.Fatalf("server saw %d requests, bench recorded %d", served.Load(), res.Requests)
	}
}

func TestRunOpenLoop(t *testing.T) {
	srv, _ := stubDaemon(t, 0, "")
	b := testBench(srv.URL)
	wl := workload{name: "w", exprs: []string{"e"}, sigma: 5}
	res, err := b.run(wl, 300*time.Millisecond, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	// 50 arrivals/s over 300ms plus the priming request: roughly 15.
	if res.Requests < 5 || res.Requests > 40 {
		t.Fatalf("open loop issued %d requests, want ~15", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
}

func TestRunCountsShedsWithRetryAfter(t *testing.T) {
	srv, _ := stubDaemon(t, 2, "1") // every 2nd request sheds, properly
	b := testBench(srv.URL)
	// Priming must succeed: request 1 is served, request 2 sheds during load.
	wl := workload{name: "w", exprs: []string{"e"}, sigma: 5}
	res, err := b.run(wl, 150*time.Millisecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatalf("result = %+v, want sheds counted", res)
	}
	if res.Errors != 0 {
		t.Fatalf("proper 429s must not count as errors: %+v", res)
	}
	if res.ShedRate <= 0 || res.ShedRate >= 1 {
		t.Fatalf("shed rate = %v", res.ShedRate)
	}
}

func TestRunFlags429WithoutRetryAfterAsError(t *testing.T) {
	srv, _ := stubDaemon(t, 2, "") // sheds WITHOUT Retry-After: protocol violation
	b := testBench(srv.URL)
	wl := workload{name: "w", exprs: []string{"e"}, sigma: 5}
	res, err := b.run(wl, 150*time.Millisecond, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Fatalf("result = %+v, want bare 429s counted as errors", res)
	}
}

func TestMineHashIsCanonical(t *testing.T) {
	// Two servers answer with the same pattern set in different order: the
	// canonical hash must agree.
	answer := func(reorder bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			ps := []map[string]any{
				{"items": []string{"x", "y"}, "freq": 5},
				{"items": []string{"z"}, "freq": 4},
			}
			if reorder {
				ps[0], ps[1] = ps[1], ps[0]
			}
			json.NewEncoder(w).Encode(map[string]any{"patterns": ps, "total": 2})
		}
	}
	srv1 := httptest.NewServer(answer(false))
	defer srv1.Close()
	srv2 := httptest.NewServer(answer(true))
	defer srv2.Close()
	h1, status, err := testBench(srv1.URL).mine("e", 5)
	if err != nil || status != http.StatusOK {
		t.Fatal(status, err)
	}
	h2, _, err := testBench(srv2.URL).mine("e", 5)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash depends on response order: %s vs %s", h1, h2)
	}
}

func TestMineReportsServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such dataset", http.StatusNotFound)
	}))
	defer srv.Close()
	_, status, err := testBench(srv.URL).mine("e", 5)
	if status != http.StatusNotFound || err == nil || !strings.Contains(err.Error(), "no such dataset") {
		t.Fatalf("status = %d err = %v, want surfaced 404", status, err)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if p := percentile(sorted, 0.5); p != 25 {
		t.Fatalf("p50 = %v, want 25 (interpolated)", p)
	}
	if p := percentile(sorted, 0.99); p <= 39 || p > 40 {
		t.Fatalf("p99 = %v, want just under 40", p)
	}
	if p := percentile([]float64{7}, 0.99); p != 7 {
		t.Fatalf("single sample p99 = %v, want 7", p)
	}
	if p := percentile(sorted, 1); p != 40 {
		t.Fatalf("p100 = %v, want the max", p)
	}
}

func TestCombineHashes(t *testing.T) {
	if got := combineHashes([]string{"solo"}); got != "solo" {
		t.Fatalf("single hash = %q, want pass-through", got)
	}
	ab := combineHashes([]string{"a", "b"})
	if ab == combineHashes([]string{"b", "a"}) {
		t.Fatal("combined hash must be order-sensitive (expressions are positional)")
	}
	if ab != combineHashes([]string{"a", "b"}) {
		t.Fatal("combined hash must be deterministic")
	}
}

func TestWorkloadFlags(t *testing.T) {
	var w workloadFlags
	if err := w.Set("t9=[.*(A)]{1,2}@25"); err != nil {
		t.Fatal(err)
	}
	if err := w.Set("plain=(B)"); err != nil {
		t.Fatal(err)
	}
	if len(w) != 2 || w[0].name != "t9" || w[0].sigma != 25 || w[0].exprs[0] != "[.*(A)]{1,2}" {
		t.Fatalf("parsed = %+v", w)
	}
	if w[1].sigma != 0 || w[1].exprs[0] != "(B)" {
		t.Fatalf("parsed = %+v", w[1])
	}
	if w.String() == "" {
		t.Fatal("String() empty")
	}
	for _, bad := range []string{"noequals", "=expr", "name=", "name=e@x"} {
		if err := w.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestWriteResultsMerge(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_serving.json")
	first := &benchcmp.ServingBaseline{
		Schema:        benchcmp.ServingSchemaVersion,
		CalibrationNS: 100,
		Passes: map[string]benchcmp.ServingPass{
			"local": {Workloads: map[string]benchcmp.ServingWorkload{"t1": {Requests: 1, P50MS: 1, P99MS: 2}}},
		},
	}
	if err := writeResults(path, false, "local", first); err != nil {
		t.Fatal(err)
	}
	second := &benchcmp.ServingBaseline{
		Schema:        benchcmp.ServingSchemaVersion,
		CalibrationNS: 250, // slower sample: the merge must keep the faster one
		Passes: map[string]benchcmp.ServingPass{
			"cluster": {Workloads: map[string]benchcmp.ServingWorkload{"t1": {Requests: 1, P50MS: 3, P99MS: 4}}},
		},
	}
	if err := writeResults(path, true, "cluster", second); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	merged, err := benchcmp.ReadServingBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Passes) != 2 {
		t.Fatalf("merged passes = %v", merged.Passes)
	}
	if merged.CalibrationNS != 100 {
		t.Fatalf("merged calibration = %v, want the faster 100", merged.CalibrationNS)
	}
}

func TestCalibrateIsPositiveAndFinite(t *testing.T) {
	ns := calibrate()
	if ns <= 0 || math.IsInf(ns, 1) {
		t.Fatalf("calibration = %v", ns)
	}
}
