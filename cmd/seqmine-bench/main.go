// Command seqmine-bench drives a live seqmined daemon with the Table III
// workload mix and measures serving latency, throughput and shed rate — a
// wrk-style closed-loop (fixed concurrency) or open-loop (fixed arrival rate)
// HTTP load generator whose output feeds the serving-latency CI gate.
//
// For every workload it first primes the answer with one unloaded request and
// records a canonical hash of the response; every timed response is checked
// against it, so a run proves that results under load are byte-identical to
// the unloaded answer. Shed requests (429) must carry a Retry-After header or
// they count as errors.
//
// The run's measurements are written as BENCH_serving.json (schema documented
// in internal/benchcmp), including a machine-speed calibration sample (the
// same splitmix64 workload as BenchmarkCalibration) so `benchgate serving`
// can compare runs across machines:
//
//	seqmine-bench -addr http://localhost:8080 -dataset bench -sigma 10 \
//	    -duration 5s -concurrency 8 -pass local -out BENCH_serving.json
//	benchgate serving -baseline BENCH_serving.json -current out.json
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"seqmine/internal/benchcmp"
	"seqmine/internal/experiments"
)

// workload is one named benchmark scenario: one or more pattern expressions
// driven round-robin against the dataset.
type workload struct {
	name  string
	exprs []string
	sigma int64
}

// workloadFlags collects repeated -workload name=expr@sigma flags.
type workloadFlags []workload

func (w *workloadFlags) String() string {
	parts := make([]string, len(*w))
	for i, x := range *w {
		parts[i] = x.name
	}
	return strings.Join(parts, " ")
}

func (w *workloadFlags) Set(v string) error {
	name, rest, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=expr[@sigma], got %q", v)
	}
	expr := rest
	var sigma int64
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		expr = rest[:at]
		if _, err := fmt.Sscanf(rest[at+1:], "%d", &sigma); err != nil {
			return fmt.Errorf("bad sigma in %q: %w", v, err)
		}
	}
	if expr == "" {
		return fmt.Errorf("empty expression in %q", v)
	}
	*w = append(*w, workload{name: name, exprs: []string{expr}, sigma: sigma})
	return nil
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "seqmined base URL")
	dataset := flag.String("dataset", "bench", "registered dataset to mine")
	sigma := flag.Int64("sigma", 10, "default minimum support for workloads that declare none")
	duration := flag.Duration("duration", 3*time.Second, "timed window per workload")
	concurrency := flag.Int("concurrency", 8, "closed-loop concurrent clients")
	rate := flag.Float64("rate", 0, "open-loop arrivals per second (0 = closed loop)")
	algorithm := flag.String("algorithm", "", "algorithm sent with every request (empty = server default)")
	distributed := flag.Bool("distributed", false, "request distributed execution on the daemon's default cluster")
	passName := flag.String("pass", "local", "pass name the results are recorded under")
	out := flag.String("out", "", "write results as BENCH_serving.json to this file (empty = stdout)")
	merge := flag.Bool("merge", false, "merge this pass into an existing -out file instead of replacing it")
	apiKey := flag.String("api-key", "", "API key sent as X-Api-Key (empty = none)")
	timeoutMS := flag.Int64("timeout-ms", 30000, "per-request timeout sent to the server and enforced client-side")
	requireShed := flag.Bool("require-shed", false, "fail unless the run shed at least one request with 429 (overload smoke)")
	failOnErrors := flag.Bool("fail-on-errors", true, "fail when any request hard-errored (non-2xx/429, bad Retry-After, or a response diverging from the unloaded answer)")
	var workloads workloadFlags
	flag.Var(&workloads, "workload", "workload as name=expr[@sigma] (repeatable; default: the Table III t1/t2/t3 templates plus their mix)")
	flag.Parse()

	if len(workloads) == 0 {
		t1, t2, t3 := experiments.T1Expr(5), experiments.T2Expr(0, 5), experiments.T3Expr(1, 5)
		workloads = workloadFlags{
			{name: "t1", exprs: []string{t1}},
			{name: "t2", exprs: []string{t2}},
			{name: "t3", exprs: []string{t3}},
			{name: "mixed", exprs: []string{t1, t2, t3}},
		}
	}
	for i := range workloads {
		if workloads[i].sigma == 0 {
			workloads[i].sigma = *sigma
		}
	}

	b := &bench{
		addr:        strings.TrimRight(*addr, "/"),
		dataset:     *dataset,
		algorithm:   *algorithm,
		distributed: *distributed,
		apiKey:      *apiKey,
		timeoutMS:   *timeoutMS,
		client: &http.Client{
			Timeout: time.Duration(*timeoutMS)*time.Millisecond + 5*time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: *concurrency + 4,
			},
		},
	}

	// Calibrate twice — before the first workload and after the last — and
	// keep the overall minimum: a transient busy period (process start-up,
	// the daemon draining) can inflate one window, but almost never both,
	// and noise only ever slows the fixed loop down.
	calibrationNS := calibrate()

	pass := benchcmp.ServingPass{Workloads: make(map[string]benchcmp.ServingWorkload)}
	shedTotal, errTotal := 0, 0
	for _, wl := range workloads {
		res, err := b.run(wl, *duration, *concurrency, *rate)
		if err != nil {
			fatal(fmt.Errorf("workload %s: %w", wl.name, err))
		}
		pass.Workloads[wl.name] = res
		shedTotal += res.Shed
		errTotal += res.Errors
		fmt.Fprintf(os.Stderr, "seqmine-bench: %-8s %6d req  p50 %8.2fms  p99 %8.2fms  %8.1f req/s  shed %5.1f%%  errors %d\n",
			wl.name, res.Requests, res.P50MS, res.P99MS, res.ThroughputRPS, 100*res.ShedRate, res.Errors)
	}

	calibrationNS = math.Min(calibrationNS, calibrate())

	baseline := &benchcmp.ServingBaseline{
		Schema:        benchcmp.ServingSchemaVersion,
		Command:       strings.Join(os.Args, " "),
		GoVersion:     runtime.Version(),
		CalibrationNS: calibrationNS,
		Passes:        map[string]benchcmp.ServingPass{*passName: pass},
	}
	if err := writeResults(*out, *merge, *passName, baseline); err != nil {
		fatal(err)
	}
	if *requireShed && shedTotal == 0 {
		fatal(fmt.Errorf("-require-shed: the run shed no requests — the daemon was never overloaded"))
	}
	if *failOnErrors && errTotal > 0 {
		fatal(fmt.Errorf("%d requests hard-errored (see per-workload counts above)", errTotal))
	}
}

type bench struct {
	addr        string
	dataset     string
	algorithm   string
	distributed bool
	apiKey      string
	timeoutMS   int64
	client      *http.Client
}

// mineRequest mirrors the wire fields of service.MineRequest that the bench
// uses (kept local so the tool builds against the HTTP API, like any client).
type mineRequest struct {
	Dataset     string `json:"dataset"`
	Pattern     string `json:"pattern"`
	Sigma       int64  `json:"sigma"`
	Algorithm   string `json:"algorithm,omitempty"`
	Distributed bool   `json:"distributed,omitempty"`
	TimeoutMS   int64  `json:"timeout_ms,omitempty"`
}

type mineResponse struct {
	Patterns []struct {
		Items []string `json:"items"`
		Freq  int64    `json:"freq"`
	} `json:"patterns"`
	Total int `json:"total"`
}

// outcome is one request's result.
type outcome struct {
	latency time.Duration
	status  int // 200, 429, or anything else
	failed  bool
}

func (b *bench) run(wl workload, duration time.Duration, concurrency int, rate float64) (benchcmp.ServingWorkload, error) {
	// Prime: one unloaded request per expression establishes the canonical
	// answer each loaded response must match byte for byte.
	expected := make([]string, len(wl.exprs))
	for i, expr := range wl.exprs {
		hash, status, err := b.mine(expr, wl.sigma)
		if err != nil {
			return benchcmp.ServingWorkload{}, fmt.Errorf("priming %q: %w", expr, err)
		}
		if status != http.StatusOK {
			return benchcmp.ServingWorkload{}, fmt.Errorf("priming %q: HTTP %d", expr, status)
		}
		expected[i] = hash
	}

	var (
		mu       sync.Mutex
		outcomes []outcome
		next     int
	)
	record := func(o outcome) {
		mu.Lock()
		outcomes = append(outcomes, o)
		mu.Unlock()
	}
	// pick assigns expressions round-robin across all clients.
	pick := func() int {
		mu.Lock()
		i := next % len(wl.exprs)
		next++
		mu.Unlock()
		return i
	}
	shoot := func() {
		i := pick()
		start := time.Now()
		hash, status, err := b.mine(wl.exprs[i], wl.sigma)
		o := outcome{latency: time.Since(start), status: status}
		switch {
		case err != nil:
			o.failed = true
		case status == http.StatusOK:
			o.failed = hash != expected[i] // diverged from the unloaded answer
		case status == http.StatusTooManyRequests:
			// ok: shed; mine() already validated Retry-After
		default:
			o.failed = true
		}
		record(o)
	}

	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	if rate > 0 {
		// Open loop: fixed arrival schedule regardless of completions, so
		// queueing delay shows up in the latencies instead of being hidden by
		// coordinated omission.
		interval := time.Duration(float64(time.Second) / rate)
		for t := start; t.Before(deadline); t = t.Add(interval) {
			time.Sleep(time.Until(t))
			wg.Add(1)
			go func() {
				defer wg.Done()
				shoot()
			}()
		}
	} else {
		for c := 0; c < concurrency; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					shoot()
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	var latencies []float64
	res := benchcmp.ServingWorkload{Requests: len(outcomes)}
	for _, o := range outcomes {
		switch {
		case o.failed:
			res.Errors++
		case o.status == http.StatusTooManyRequests:
			res.Shed++
		default:
			latencies = append(latencies, float64(o.latency)/float64(time.Millisecond))
		}
	}
	if len(latencies) == 0 {
		return res, fmt.Errorf("no request succeeded (of %d issued)", res.Requests)
	}
	sort.Float64s(latencies)
	res.P50MS = percentile(latencies, 0.50)
	res.P99MS = percentile(latencies, 0.99)
	res.ThroughputRPS = float64(len(latencies)) / elapsed.Seconds()
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	res.ResultHash = combineHashes(expected)
	return res, nil
}

// mine issues one query and returns the canonical response hash (for 200s),
// the HTTP status, and an error for transport failures or protocol violations
// (a 429 without a usable Retry-After is a violation, not a shed).
func (b *bench) mine(expr string, sigma int64) (hash string, status int, err error) {
	body, _ := json.Marshal(mineRequest{
		Dataset:     b.dataset,
		Pattern:     expr,
		Sigma:       sigma,
		Algorithm:   b.algorithm,
		Distributed: b.distributed,
		TimeoutMS:   b.timeoutMS,
	})
	req, err := http.NewRequest(http.MethodPost, b.addr+"/mine", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if b.apiKey != "" {
		req.Header.Set("X-Api-Key", b.apiKey)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var mr mineResponse
		if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
			return "", resp.StatusCode, fmt.Errorf("decoding response: %w", err)
		}
		return hashResponse(&mr), resp.StatusCode, nil
	case http.StatusTooManyRequests:
		io.Copy(io.Discard, resp.Body)
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			return "", resp.StatusCode, fmt.Errorf("429 without Retry-After header")
		}
		return "", resp.StatusCode, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", resp.StatusCode, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

// hashResponse canonicalizes a mining answer: one "items\tfreq" line per
// pattern, sorted, hashed. Identical pattern sets hash identically regardless
// of tie order in the response.
func hashResponse(mr *mineResponse) string {
	lines := make([]string, len(mr.Patterns))
	for i, p := range mr.Patterns {
		lines[i] = fmt.Sprintf("%s\t%d", strings.Join(p.Items, " "), p.Freq)
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "total %d\n", mr.Total)
	return hex.EncodeToString(h.Sum(nil))
}

// combineHashes folds the per-expression hashes of a workload into one stable
// hash (single-expression workloads keep their hash as-is).
func combineHashes(hashes []string) string {
	if len(hashes) == 1 {
		return hashes[0]
	}
	h := sha256.New()
	for _, x := range hashes {
		h.Write([]byte(x))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// percentile interpolates the p-quantile of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// calibrate measures the fixed splitmix64 CPU workload of
// BenchmarkCalibration (ns per 1<<22-step loop, median of 5), giving the
// machine-speed factor that `benchgate serving` divides out of cross-machine
// latency ratios.
func calibrate() float64 {
	// Minimum of several runs, not the median: scheduler and neighbor noise
	// can only ever slow the fixed loop down, so the minimum is the stable
	// estimate of the machine's true speed (a noisy median here would shift
	// every gated latency ratio by the same factor).
	best := math.Inf(1)
	for i := 0; i < 9; i++ {
		start := time.Now()
		var acc uint64
		for j := uint64(0); j < 1<<22; j++ {
			x := j + 0x9e3779b97f4a7c15
			x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
			x = (x ^ (x >> 27)) * 0x94d049bb133111eb
			acc ^= x ^ (x >> 31)
		}
		if d := float64(time.Since(start)); d < best {
			best = d
		}
		if acc == 42 {
			panic("unreachable; keeps the loop from being optimized away")
		}
	}
	return best
}

// writeResults emits the run's baseline file, optionally merging this run's
// pass into an existing file's passes (so local and cluster passes accumulate
// into one BENCH_serving.json).
func writeResults(path string, merge bool, passName string, b *benchcmp.ServingBaseline) error {
	if path == "" {
		return benchcmp.WriteServingBaseline(os.Stdout, b)
	}
	if merge {
		if f, err := os.Open(path); err == nil {
			prev, perr := benchcmp.ReadServingBaseline(f)
			f.Close()
			if perr != nil {
				return fmt.Errorf("-merge: %w", perr)
			}
			for name, pass := range prev.Passes {
				if name != passName {
					b.Passes[name] = pass
				}
			}
			// Keep the fastest calibration either run observed: both ran
			// on this machine, and noise only ever inflates the sample.
			if prev.CalibrationNS > 0 {
				b.CalibrationNS = math.Min(b.CalibrationNS, prev.CalibrationNS)
			}
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchcmp.WriteServingBaseline(f, b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqmine-bench:", err)
	os.Exit(1)
}
