// Command seqmine mines frequent sequences under a flexible subsequence
// constraint from a text sequence file (and an optional hierarchy file).
//
// Example:
//
//	seqmine -data data/nyt/sequences.txt -hierarchy data/nyt/hierarchy.txt \
//	        -pattern ".*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*" -sigma 10 -algorithm dseq
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"seqmine"
	"seqmine/internal/obs"
)

func main() {
	data := flag.String("data", "", "path to the sequence file (one space-separated sequence per line)")
	hierarchy := flag.String("hierarchy", "", "path to the hierarchy file (optional)")
	pattern := flag.String("pattern", "", "pattern expression, e.g. \".*(A)[(.^)|.]*(b).*\"")
	sigma := flag.Int64("sigma", 2, "minimum support threshold")
	algorithm := flag.String("algorithm", "dseq", "algorithm: dfs, count, dseq, dcand, naive, seminaive")
	workers := flag.Int("workers", 0, "number of workers (0 = all CPUs)")
	spillThreshold := flag.Int64("spill-threshold", 0, "shuffle bytes held in memory before spilling to disk (distributed algorithms; 0 = never spill)")
	spillDir := flag.String("spill-dir", "", "directory for shuffle spill segments (default: system temp dir)")
	sendBuffer := flag.Int64("send-buffer", 0, "per-peer streaming send-buffer bytes: map workers stream the shuffle while mapping instead of after a barrier (distributed algorithms; 0 = barrier mode)")
	sendBufferMax := flag.Int64("send-buffer-max", 0, "adaptive send-buffer bound in bytes: destinations that keep filling their share grow their buffer up to this bound (0 or <= -send-buffer = fixed buffers)")
	compressSpill := flag.Bool("compress-spill", false, "DEFLATE-compress shuffle spill segments")
	prefilter := flag.Bool("prefilter", false, "skip sequences with no accepting run via a cheap two-pass reachability scan before mining (output is identical either way)")
	clusterWorkers := flag.String("cluster", "", "comma-separated seqmine-worker control URLs: run dseq/dcand on this cluster with the fault-tolerant scheduler instead of in-process")
	taskRetries := flag.Int("task-retries", 0, "cluster runs: failed attempts relaunched on surviving workers (0 = default of 2, negative = no retries)")
	speculativeAfter := flag.Duration("speculative-after", 0, "cluster runs: launch a speculative duplicate attempt when the running attempt exceeds this (0 = no speculation)")
	top := flag.Int("top", 25, "print only the top-k frequent sequences (0 = all)")
	showMetrics := flag.Bool("metrics", true, "print shuffle/runtime metrics for distributed algorithms")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error or off")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqmine: %v\n", err)
		os.Exit(2)
	}
	obs.SetDefaultLogger(obs.NewLogger(os.Stderr, lvl))

	if *data == "" || *pattern == "" {
		fmt.Fprintln(os.Stderr, "seqmine: -data and -pattern are required")
		flag.Usage()
		os.Exit(2)
	}

	algos := map[string]seqmine.Algorithm{
		"dfs":       seqmine.SequentialDFS,
		"count":     seqmine.SequentialCount,
		"dseq":      seqmine.DSeq,
		"dcand":     seqmine.DCand,
		"naive":     seqmine.Naive,
		"seminaive": seqmine.SemiNaive,
	}
	algo, ok := algos[strings.ToLower(*algorithm)]
	if !ok {
		fmt.Fprintf(os.Stderr, "seqmine: unknown algorithm %q\n", *algorithm)
		os.Exit(2)
	}

	db, err := seqmine.ReadDatabaseFiles(*data, *hierarchy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d sequences, %d dictionary items\n", db.NumSequences(), db.Dict.Size())

	opts := seqmine.DefaultOptions()
	opts.Algorithm = algo
	opts.Workers = *workers
	opts.SpillThreshold = *spillThreshold
	opts.SpillTmpDir = *spillDir
	opts.SendBufferBytes = *sendBuffer
	opts.SendBufferMaxBytes = *sendBufferMax
	opts.CompressSpill = *compressSpill
	opts.Prefilter = *prefilter
	for _, u := range strings.Split(*clusterWorkers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			opts.ClusterWorkers = append(opts.ClusterWorkers, u)
		}
	}
	opts.TaskRetries = *taskRetries
	opts.SpeculativeAfter = *speculativeAfter
	result, err := seqmine.Mine(db, *pattern, *sigma, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%d frequent sequences (algorithm %s, sigma %d)\n", len(result.Patterns), algo, *sigma)
	limit := len(result.Patterns)
	if *top > 0 && *top < limit {
		limit = *top
	}
	for _, p := range result.Patterns[:limit] {
		fmt.Printf("%8d  %s\n", p.Freq, seqmine.DecodePattern(db, p))
	}
	if *showMetrics && result.Metrics.ShuffleRecords > 0 {
		m := result.Metrics
		fmt.Printf("map time %v, reduce time %v, shuffle %d records / %d bytes over %d partitions\n",
			m.MapTime, m.ReduceTime, m.ShuffleRecords, m.ShuffleBytes, m.Partitions)
		if m.StreamedBatches > 0 {
			fmt.Printf("streamed %d batches (shuffle time %v overlapping the map phase)\n", m.StreamedBatches, m.ShuffleTime)
		}
		if m.SpillCount > 0 {
			fmt.Printf("spilled %d bytes in %d segments\n", m.SpilledBytes, m.SpillCount)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqmine:", err)
	os.Exit(1)
}
