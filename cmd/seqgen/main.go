// Command seqgen generates the synthetic datasets used by the experiments
// (NYT-like, AMZN-like, AMZN-F-like, CW-like) and writes them as text files:
// a sequence file (one space-separated sequence per line) and a hierarchy
// file ("child<TAB>parent1,parent2" per line).
//
// Example:
//
//	seqgen -dataset nyt -n 10000 -seed 1 -out ./data/nyt
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"seqmine/internal/datagen"
	"seqmine/internal/seqdb"
)

func main() {
	dataset := flag.String("dataset", "nyt", "dataset to generate: nyt, amzn, amzn-f, cw")
	n := flag.Int("n", 10000, "number of sequences to generate")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", ".", "output directory (created if missing)")
	flag.Parse()

	var (
		raw [][]string
		h   seqdb.Hierarchy
	)
	switch *dataset {
	case "nyt":
		raw, h = datagen.NYTRaw(datagen.NYTConfig{NumSentences: *n, Seed: *seed})
	case "amzn":
		raw, h = datagen.AmazonRaw(datagen.AmazonConfig{NumCustomers: *n, Seed: *seed})
	case "amzn-f":
		raw, h = datagen.AmazonRaw(datagen.AmazonConfig{NumCustomers: *n, Seed: *seed, Forest: true})
	case "cw":
		raw, h = datagen.ClueWebRaw(datagen.ClueWebConfig{NumSentences: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "seqgen: unknown dataset %q (want nyt, amzn, amzn-f or cw)\n", *dataset)
		os.Exit(2)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	seqPath := filepath.Join(*out, "sequences.txt")
	hierPath := filepath.Join(*out, "hierarchy.txt")

	sf, err := os.Create(seqPath)
	if err != nil {
		fatal(err)
	}
	if err := seqdb.WriteSequences(sf, raw); err != nil {
		fatal(err)
	}
	if err := sf.Close(); err != nil {
		fatal(err)
	}
	hf, err := os.Create(hierPath)
	if err != nil {
		fatal(err)
	}
	if err := seqdb.WriteHierarchy(hf, h); err != nil {
		fatal(err)
	}
	if err := hf.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d sequences to %s and %d hierarchy entries to %s\n", len(raw), seqPath, len(h), hierPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqgen:", err)
	os.Exit(1)
}
