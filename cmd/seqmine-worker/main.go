// Command seqmine-worker is one process of a seqmine mining cluster.
//
// In worker mode (the default) it serves two listeners: a control HTTP API
// (POST /run, GET /healthz) on -listen and the TCP shuffle fabric on
// -data-listen. A cluster is simply N of these processes:
//
//	seqmine-worker -listen :9090 -data-listen :9190 &
//	seqmine-worker -listen :9091 -data-listen :9191 &
//	seqmine-worker -listen :9092 -data-listen :9192 &
//
// With -submit it acts as the coordinator CLI instead: it loads a dataset,
// splits it across the given workers, runs a distributed D-SEQ or D-CAND job
// over the TCP transport and prints the merged patterns in the same format
// as cmd/seqmine:
//
//	seqmine-worker -submit -workers http://localhost:9090,http://localhost:9091,http://localhost:9092 \
//	               -data data/nyt/sequences.txt -hierarchy data/nyt/hierarchy.txt \
//	               -pattern "(.){2,4}" -sigma 100 -algorithm dcand
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqmine/internal/cluster"
	"seqmine/internal/obs"
	"seqmine/internal/seqdb"
	"seqmine/internal/transport"
)

func main() {
	// Worker mode flags.
	listen := flag.String("listen", ":9090", "control HTTP listen address")
	dataListen := flag.String("data-listen", ":9190", "shuffle (TCP transport) listen address")
	dataAdvertise := flag.String("data-advertise", "", "shuffle address advertised to peers (default: the data listener's address)")
	spillDir := flag.String("spill-dir", "", "directory for shuffle spill segments of jobs that enable spilling (default: system temp dir)")
	datasetCache := flag.Int("dataset-cache", cluster.DefaultStoreEntries, "datasets held in this worker's shared dataset store (LRU-evicted beyond it)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this extra address (empty = disabled)")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error or off")

	// Submit (coordinator) mode flags.
	submit := flag.Bool("submit", false, "submit a job to a running cluster instead of serving")
	workers := flag.String("workers", "", "comma-separated worker control URLs (submit mode)")
	data := flag.String("data", "", "path to the sequence file (submit mode)")
	hierarchy := flag.String("hierarchy", "", "path to the hierarchy file (optional, submit mode)")
	pattern := flag.String("pattern", "", "pattern expression (submit mode)")
	sigma := flag.Int64("sigma", 2, "minimum support threshold (submit mode)")
	algorithm := flag.String("algorithm", "dcand", "algorithm: dseq or dcand (submit mode)")
	spillThreshold := flag.Int64("spill-threshold", 0, "shuffle bytes each worker holds in memory before spilling to disk (0 = never spill, submit mode)")
	sendBuffer := flag.Int64("send-buffer", 0, "per-peer streaming send-buffer bytes on each worker (0 = barrier mode, submit mode)")
	sendBufferMax := flag.Int64("send-buffer-max", 0, "adaptive send-buffer bound in bytes on each worker (0 or <= -send-buffer = fixed buffers, submit mode)")
	compressSpill := flag.Bool("compress-spill", false, "DEFLATE-compress the workers' spill segments (submit mode)")
	prefilter := flag.Bool("prefilter", false, "workers skip sequences with no accepting run via a cheap two-pass reachability scan before mining (output is identical either way, submit mode)")
	taskRetries := flag.Int("task-retries", 2, "failed attempts relaunched on surviving workers before the job fails (negative = no retries, submit mode)")
	speculativeAfter := flag.Duration("speculative-after", 0, "launch a speculative duplicate attempt when the running attempt exceeds this (0 = no speculation, submit mode)")
	taskPartitions := flag.Int("task-partitions", 0, "per-partition tasks the input is decomposed into (0 = one per live worker, submit mode)")
	top := flag.Int("top", 25, "print only the top-k frequent sequences (0 = all, submit mode)")
	showMetrics := flag.Bool("metrics", true, "print shuffle/runtime metrics (submit mode)")
	traceOut := flag.String("trace-out", "", "write the job's merged trace as Chrome trace-event JSON to this file (submit mode)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqmine-worker: %v\n", err)
		os.Exit(2)
	}
	obs.SetDefaultLogger(obs.NewLogger(os.Stderr, lvl))

	if *submit {
		runSubmit(submitConfig{
			workers: *workers, data: *data, hierarchy: *hierarchy,
			pattern: *pattern, sigma: *sigma, algorithm: *algorithm,
			spillThreshold: *spillThreshold, sendBuffer: *sendBuffer, sendBufferMax: *sendBufferMax, compressSpill: *compressSpill, prefilter: *prefilter,
			taskRetries: *taskRetries, speculativeAfter: *speculativeAfter, taskPartitions: *taskPartitions,
			top: *top, showMetrics: *showMetrics, traceOut: *traceOut,
		})
		return
	}
	runWorker(*listen, *dataListen, *dataAdvertise, *spillDir, *debugAddr, *datasetCache)
}

// runWorker serves the control API and the shuffle fabric until SIGINT/TERM.
func runWorker(listen, dataListen, dataAdvertise, spillDir, debugAddr string, datasetCache int) {
	node, err := transport.NewNode(dataListen, transport.Config{Advertise: dataAdvertise})
	if err != nil {
		fatal(err)
	}
	defer node.Close()

	worker := cluster.NewWorker(node)
	worker.SpillDir = spillDir
	worker.Store = cluster.NewStore(datasetCache)
	worker.Rec = obs.NewRecorder("worker "+node.Addr(), 0)
	worker.Obs = obs.NewRegistry()
	srv := &http.Server{
		Addr:        listen,
		Handler:     worker.Handler(),
		ReadTimeout: 30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if debugAddr != "" {
		go func() {
			// The pprof import registers on http.DefaultServeMux; serving it on
			// a separate listener keeps profiling off the control port.
			log.Printf("seqmine-worker: pprof on http://%s/debug/pprof/", debugAddr)
			if err := http.ListenAndServe(debugAddr, nil); err != nil {
				log.Printf("seqmine-worker: debug server: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("seqmine-worker: control on %s, shuffle on %s", listen, node.Addr())
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("seqmine-worker: %v", err)
	case <-ctx.Done():
		log.Printf("seqmine-worker: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("seqmine-worker: shutdown: %v", err)
		}
	}
}

// submitConfig carries the coordinator CLI's flags.
type submitConfig struct {
	workers, data, hierarchy, pattern, algorithm string
	sigma, spillThreshold, sendBuffer            int64
	sendBufferMax                                int64
	compressSpill, prefilter                     bool
	taskRetries, taskPartitions                  int
	speculativeAfter                             time.Duration
	top                                          int
	showMetrics                                  bool
	traceOut                                     string
}

// runSubmit coordinates one distributed job and prints the merged result.
func runSubmit(sc submitConfig) {
	var urls []string
	for _, u := range strings.Split(sc.workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 || sc.data == "" || sc.pattern == "" {
		fmt.Fprintln(os.Stderr, "seqmine-worker: -submit requires -workers, -data and -pattern")
		flag.Usage()
		os.Exit(2)
	}
	algo := strings.ToLower(sc.algorithm)
	if algo != cluster.AlgoDSeq && algo != cluster.AlgoDCand {
		fmt.Fprintf(os.Stderr, "seqmine-worker: algorithm %q cannot run distributed (want dseq or dcand)\n", sc.algorithm)
		os.Exit(2)
	}

	db, err := seqdb.ReadFiles(sc.data, sc.hierarchy)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d sequences, %d dictionary items\n", db.NumSequences(), db.Dict.Size())

	copts := cluster.DefaultOptions()
	copts.SpillThresholdBytes = sc.spillThreshold
	copts.SendBufferBytes = sc.sendBuffer
	copts.SendBufferMaxBytes = sc.sendBufferMax
	copts.CompressSpill = sc.compressSpill
	copts.Prefilter = sc.prefilter
	copts.ApplyRetryKnobs(sc.taskRetries, sc.speculativeAfter)
	copts.TaskPartitions = sc.taskPartitions
	coord := &cluster.Coordinator{Workers: urls}
	// A local recorder collects the coordinator's spans plus every worker's
	// shipped spans, so -trace-out captures the whole distributed job.
	rec := obs.NewRecorder("submit", 0)
	ctx := obs.WithRecorder(context.Background(), rec)
	start := time.Now()
	res, err := coord.Mine(ctx, db, sc.pattern, sc.sigma, algo, copts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if sc.traceOut != "" {
		buf, err := obs.ChromeTrace(rec.TraceSpans(res.TraceID))
		if err == nil {
			err = os.WriteFile(sc.traceOut, buf, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqmine-worker: writing trace: %v\n", err)
		} else {
			fmt.Printf("trace %s written to %s\n", res.TraceID, sc.traceOut)
		}
	}

	fmt.Printf("%d frequent sequences (algorithm %s, sigma %d)\n", len(res.Patterns), algo, sc.sigma)
	limit := len(res.Patterns)
	if sc.top > 0 && sc.top < limit {
		limit = sc.top
	}
	for _, p := range res.Patterns[:limit] {
		fmt.Printf("%8d  %s\n", p.Freq, db.Dict.DecodeString(p.Items))
	}
	if sc.showMetrics {
		m := res.Metrics
		fmt.Printf("%d workers, wall %v, map time %v, reduce time %v, shuffle %d records / %d bytes on the wire (%d read) over %d partitions\n",
			len(urls), elapsed.Round(time.Millisecond), m.MapTime, m.ReduceTime,
			m.ShuffleRecords, m.ShuffleBytes, res.WireBytesIn, m.Partitions)
		fmt.Printf("scheduler: %d tasks, %d attempts, %d retries, %d speculative, %d dead workers (winning epoch %d)\n",
			res.Tasks, res.Attempts, res.Retries, res.SpeculativeAttempts, len(res.DeadWorkers), res.WinningEpoch)
		fmt.Printf("dataset store: %d hits, %d misses, %d bytes pushed\n",
			res.StoreHits, res.StoreMisses, res.StorePutBytes)
		if m.StreamedBatches > 0 {
			fmt.Printf("streamed %d batches across the cluster (max shuffle time %v overlapping the map phase)\n", m.StreamedBatches, m.ShuffleTime)
		}
		if m.SpillCount > 0 {
			fmt.Printf("spilled %d bytes in %d segments across the cluster\n", m.SpilledBytes, m.SpillCount)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "seqmine-worker:", err)
	os.Exit(1)
}
