// Command seqmined is the seqmine mining daemon: a long-lived HTTP service
// over the dataset registry, compiled-pattern cache and partitioned query
// executor of internal/service.
//
// Example:
//
//	seqmined -addr :8080 -load nyt=data/nyt/sequences.txt,data/nyt/hierarchy.txt
//	curl -s localhost:8080/mine -d '{"dataset":"nyt","pattern":"(.){2,4}","sigma":100}'
//
// Datasets can also be registered at runtime with PUT /datasets/{name}; see
// DESIGN.md for the full HTTP API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served on -debug-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"seqmine/internal/obs"
	"seqmine/internal/service"
)

// loadFlags collects repeated -load name=sequences[,hierarchy] flags.
type loadFlags []string

func (l *loadFlags) String() string     { return strings.Join(*l, " ") }
func (l *loadFlags) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache-size", 128, "compiled-pattern cache capacity (entries)")
	workers := flag.Int("workers", 0, "default per-query worker pool size (0 = all CPUs)")
	maxConcurrent := flag.Int("max-concurrent", 0, "maximum queries mining at once (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "alias of -max-concurrent (the admission gate's in-flight bound)")
	queueDepth := flag.Int("queue-depth", 0, "queries that may wait for a mining slot before shedding with 429 (0 = 4x the in-flight bound, negative = no waiting room)")
	resultCache := flag.Int("result-cache", 1024, "result cache capacity (entries), keyed by dataset generation, pattern, sigma and algorithm (0 = disabled)")
	apiKeys := flag.String("api-keys", "", "JSON file of API keys ([{\"key\":...,\"tenant\":...,\"max_inflight\":...,\"max_datasets\":...}]); empty = no authentication")
	catalogDir := flag.String("catalog-dir", "", "persistent dataset catalog directory: registrations survive restarts and may be shared by replicas (empty = in-memory only)")
	timeout := flag.Duration("timeout", 0, "default per-query deadline (0 = none)")
	clusterWorkers := flag.String("cluster", "", "comma-separated seqmine-worker control URLs used by queries with \"distributed\": true")
	spillThreshold := flag.Int64("spill-threshold", 0, "default shuffle bytes a query holds in memory before spilling to disk (0 = never spill; queries override with \"spill_threshold_bytes\")")
	spillDir := flag.String("spill-dir", "", "directory for shuffle spill segments (default: system temp dir)")
	sendBuffer := flag.Int64("send-buffer", 0, "default per-peer streaming send-buffer bytes (0 = barrier-mode shuffles; queries override with \"send_buffer_bytes\")")
	sendBufferMax := flag.Int64("send-buffer-max", 0, "default adaptive send-buffer bound in bytes (0 or <= -send-buffer = fixed buffers; queries override with \"send_buffer_max_bytes\")")
	compressSpill := flag.Bool("compress-spill", false, "DEFLATE-compress shuffle spill segments by default (queries override either way with the tri-state \"compress_spill\")")
	prefilter := flag.Bool("prefilter", false, "enable the two-pass reachability prefilter by default: skip sequences with no accepting run before mining (output is identical either way; queries opt in with \"prefilter\")")
	taskRetries := flag.Int("task-retries", 0, "default retry budget of cluster queries: failed attempts relaunched on surviving workers (0 = built-in default of 2, negative = no retries; queries override with \"task_retries\")")
	speculativeAfter := flag.Duration("speculative-after", 0, "launch a speculative duplicate attempt when a cluster query's attempt runs longer than this (0 = no speculation; queries override with \"speculative_after_ms\")")
	logLevel := flag.String("log-level", "info", "minimum structured-log level: debug, info, warn, error or off")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof profiling endpoints on this extra address (empty = disabled)")
	traceBuffer := flag.Int("trace-buffer", 0, "trace spans retained for GET /debug/trace/{id} (0 = default)")
	var loads loadFlags
	flag.Var(&loads, "load", "dataset to load at startup as name=sequences.txt[,hierarchy.txt] (repeatable)")
	flag.Parse()

	lvl, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "seqmined: %v\n", err)
		os.Exit(2)
	}
	obs.SetDefaultLogger(obs.NewLogger(os.Stderr, lvl))

	var clusterURLs []string
	if *clusterWorkers != "" {
		for _, u := range strings.Split(*clusterWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				clusterURLs = append(clusterURLs, u)
			}
		}
	}
	inflight := *maxConcurrent
	if inflight == 0 {
		inflight = *maxInflight
	}
	var auth *service.Authenticator
	if *apiKeys != "" {
		keys, err := service.LoadAPIKeys(*apiKeys)
		if err == nil {
			auth, err = service.NewAuthenticator(keys)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqmined: %v\n", err)
			os.Exit(2)
		}
	}
	var catalog *service.Catalog
	if *catalogDir != "" {
		var err error
		if catalog, err = service.OpenCatalog(*catalogDir); err != nil {
			fmt.Fprintf(os.Stderr, "seqmined: %v\n", err)
			os.Exit(1)
		}
		defer catalog.Close()
	}
	svc := service.New(service.Config{
		CacheSize:          *cacheSize,
		Workers:            *workers,
		MaxConcurrent:      inflight,
		QueueDepth:         *queueDepth,
		ResultCacheSize:    *resultCache,
		Auth:               auth,
		Catalog:            catalog,
		DefaultTimeout:     *timeout,
		ClusterWorkers:     clusterURLs,
		SpillThreshold:     *spillThreshold,
		SpillTmpDir:        *spillDir,
		SendBufferBytes:    *sendBuffer,
		SendBufferMaxBytes: *sendBufferMax,
		CompressSpill:      *compressSpill,
		Prefilter:          *prefilter,
		TaskRetries:        *taskRetries,
		SpeculativeAfter:   *speculativeAfter,
		Obs:                obs.NewRegistry(),
		Recorder:           obs.NewRecorder("seqmined", *traceBuffer),
	})
	if catalog != nil {
		n, err := svc.RestoreCatalog()
		if err != nil {
			fmt.Fprintf(os.Stderr, "seqmined: restoring catalog: %v\n", err)
			os.Exit(1)
		}
		if n > 0 {
			log.Printf("restored %d dataset(s) from catalog %s", n, catalog.Dir())
		}
	}
	for _, spec := range loads {
		name, paths, ok := strings.Cut(spec, "=")
		if !ok || name == "" {
			fmt.Fprintf(os.Stderr, "seqmined: invalid -load %q, want name=sequences[,hierarchy]\n", spec)
			os.Exit(2)
		}
		seqPath, hierPath, _ := strings.Cut(paths, ",")
		start := time.Now()
		if _, err := svc.LoadDataset(name, seqPath, hierPath); err != nil {
			fmt.Fprintf(os.Stderr, "seqmined: loading dataset %q: %v\n", name, err)
			os.Exit(1)
		}
		info, _ := svc.DatasetInfo(name)
		log.Printf("loaded dataset %q in %v (%s)", name, time.Since(start).Round(time.Millisecond), info.Stats)
	}

	srv := &http.Server{
		Addr:        *addr,
		Handler:     service.NewHandler(svc),
		ReadTimeout: 30 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		go func() {
			// The pprof import registers on http.DefaultServeMux; serving it on
			// a separate listener keeps profiling off the public API port.
			log.Printf("seqmined: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("seqmined: debug server: %v", err)
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("seqmined listening on %s (%d datasets)", *addr, len(svc.Datasets()))
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("seqmined: %v", err)
	case <-ctx.Done():
		log.Printf("seqmined: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("seqmined: shutdown: %v", err)
		}
	}
}
