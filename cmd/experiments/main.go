// Command experiments runs the evaluation harness that regenerates every
// table and figure of the paper on the synthetic datasets (see EXPERIMENTS.md
// for results and discussion).
//
// Example:
//
//	experiments -scale default -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"

	"seqmine/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: tiny, small, default")
	nyt := flag.Int("nyt", 0, "override: number of NYT-like sentences")
	amzn := flag.Int("amzn", 0, "override: number of AMZN-like customers")
	cw := flag.Int("cw", 0, "override: number of CW-like sentences")
	workers := flag.Int("workers", 0, "override: number of workers")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown tables")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.Scale{NYTSentences: 600, AmazonCustomers: 400, ClueWebSentences: 600, Workers: 4, Seed: 1}
	case "small":
		scale = experiments.SmallScale()
	case "default":
		scale = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if *nyt > 0 {
		scale.NYTSentences = *nyt
	}
	if *amzn > 0 {
		scale.AmazonCustomers = *amzn
	}
	if *cw > 0 {
		scale.ClueWebSentences = *cw
	}
	if *workers > 0 {
		scale.Workers = *workers
	}

	if err := experiments.RunAll(scale, os.Stdout, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
