// Command benchgate records and enforces the benchmark baseline used by the
// CI bench-compare job.
//
// Subcommands:
//
//	record    read `go test -bench` output on stdin, write BENCH_baseline.json
//	compare   read current `go test -bench` output on stdin, compare medians
//	          against the baseline and exit non-zero when the geometric mean
//	          of the time ratios exceeds -max-ratio
//	emit      render a baseline back as benchmark text (for benchstat)
//	normalize re-emit benchmark text with normalized names (for benchstat)
//
// The gate normalizes cross-machine speed differences by the
// BenchmarkCalibration workload (see the root bench_test.go), which is
// excluded from the geomean. Typical CI usage:
//
//	go test -run '^$' -bench "$TIER1" -benchtime=3x -count=5 -cpu 2 ./... | tee bench.txt
//	go run ./cmd/benchgate compare -baseline BENCH_baseline.json < bench.txt
//
// All command logic lives in internal/benchcmp (RunCLI), where it is unit
// tested; this file is only the process shell.
package main

import (
	"fmt"
	"os"

	"seqmine/internal/benchcmp"
)

func main() {
	if err := benchcmp.RunCLI(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
