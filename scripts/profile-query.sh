#!/usr/bin/env bash
# Capture a CPU profile of seqmined that spans real mining work, plus the
# trace and heap profile to go with it. The script starts a throwaway daemon
# on a synthetic NYT-style dataset with -debug-addr enabled, runs mining
# queries in a loop while /debug/pprof/profile records, and keeps:
#
#   cpu.pprof    CPU samples covering the queries (go tool pprof cpu.pprof)
#   heap.pprof   heap profile taken right after the queries
#   trace.json   the last query's trace, Chrome trace-event JSON — load it
#                at https://ui.perfetto.dev or chrome://tracing
#   metrics.prom final Prometheus scrape of the daemon
#
# Usage:
#
#	./scripts/profile-query.sh [out-dir] [profile-seconds]
#
# Defaults: out-dir "profiles", 10 seconds of CPU capture. To profile an
# already-running daemon instead, point go tool pprof directly at its
# -debug-addr: go tool pprof http://host:port/debug/pprof/profile?seconds=10
set -euo pipefail

cd "$(dirname "$0")/.."

outdir=${1:-profiles}
seconds=${2:-10}
mkdir -p "$outdir"

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmined

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 4000 -seed 7 -out "$workdir/data"

addr=127.0.0.1:19580
debug=127.0.0.1:19581
"$workdir/bin/seqmined" -addr "$addr" -debug-addr "$debug" \
    -load "nyt=$workdir/data/sequences.txt,$workdir/data/hierarchy.txt" \
    >"$workdir/seqmined.log" 2>&1 &

for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -fsS "http://$addr/healthz" >/dev/null

echo "== capturing $seconds seconds of CPU profile while mining"
curl -fsS "http://$debug/debug/pprof/profile?seconds=$seconds" -o "$outdir/cpu.pprof" &
profiler=$!

query='{"dataset":"nyt","pattern":"[.*(.)]{1,3}.*","sigma":100,"algorithm":"dseq"}'
queries=0
trace_id=""
while kill -0 "$profiler" 2>/dev/null; do
    trace_id=$(curl -fsS -D - -o /dev/null -d "$query" "http://$addr/mine" |
        tr -d '\r' | sed -n 's/^[Xx]-[Ss]eqmine-[Tt]race: //p')
    queries=$((queries + 1))
done
wait "$profiler"
echo "== $queries queries mined during the capture"

echo "== saving heap profile, trace and metrics"
curl -fsS "http://$debug/debug/pprof/heap" -o "$outdir/heap.pprof"
if [ -n "$trace_id" ]; then
    curl -fsS "http://$addr/debug/trace/$trace_id" -o "$outdir/trace.json"
fi
curl -fsS "http://$addr/metrics?format=prometheus" -o "$outdir/metrics.prom"

echo "== profiles written to $outdir/"
echo "   go tool pprof -top $outdir/cpu.pprof"
echo "   per-stage shuffle attribution (goroutine labels set by the engine):"
echo "     go tool pprof -tags $outdir/cpu.pprof                                 # seqmine_stage breakdown"
echo "     go tool pprof -top -tagfocus seqmine_stage=shuffle_merge $outdir/cpu.pprof"
echo "     stages: shuffle_recv, shuffle_send (with a per-peer tag), shuffle_merge, reduce"
