#!/usr/bin/env bash
# Overload smoke test: run seqmined with deliberately tiny admission bounds
# (-max-inflight 2, -queue-depth 4) and drive it at roughly 2x what it can
# serve. The serving tier must degrade the contract, not the answers:
#
#   - every rejected request is a 429 carrying a Retry-After header
#     (seqmine-bench counts a 429 without one as a hard error);
#   - every accepted answer is byte-identical to the unloaded answer
#     (seqmine-bench primes each workload before loading and hashes every
#     200 against the primed hash);
#   - no silent drops: every issued request is accounted as a 200, a 429, or
#     a counted error, and -fail-on-errors makes any error fail the run;
#   - at least one request actually shed (-require-shed), otherwise the test
#     is vacuous;
#   - the queue never exceeded its bound and shedding is visible in the
#     Prometheus exposition (promcheck -max/-min on the admission gauges).
#
# Used by CI (.github/workflows/ci.yml, overload-smoke job) and runnable
# locally: ./scripts/overload-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

export GOMAXPROCS=${GOMAXPROCS:-2}

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmined ./cmd/seqmine-bench ./cmd/promcheck

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 400 -seed 7 -out "$workdir/data"

max_inflight=2
queue_depth=4

echo "== starting seqmined (-max-inflight $max_inflight -queue-depth $queue_depth -result-cache 0)"
"$workdir/bin/seqmined" -addr 127.0.0.1:18081 -result-cache 0 \
    -max-inflight "$max_inflight" -queue-depth "$queue_depth" \
    -load "bench=$workdir/data/sequences.txt,$workdir/data/hierarchy.txt" &

daemon=http://127.0.0.1:18081
for _ in $(seq 1 100); do
    if curl -fsS "$daemon/healthz" >/dev/null 2>&1; then
        break
    fi
    sleep 0.1
done
curl -fsS "$daemon/healthz" >/dev/null

echo "== overloading: 16 closed-loop clients against $max_inflight slots + $queue_depth queue"
"$workdir/bin/seqmine-bench" -addr "$daemon" -dataset bench -sigma 40 \
    -duration "${OVERLOAD_DURATION:-3s}" -concurrency 16 \
    -pass overload -require-shed -out "$workdir/overload.json"

echo "== checking the admission exposition (queue bound + shed visibility)"
curl -fsS "$daemon/metrics?format=prometheus" | tee "$workdir/metrics.prom" |
    "$workdir/bin/promcheck" \
        -require seqmine_admission_inflight \
        -require seqmine_admission_shed_total \
        -max "seqmine_admission_queue_depth_max=$queue_depth" \
        -min seqmine_admission_shed_total=1

if [ -n "${OVERLOAD_ARTIFACT_DIR:-}" ]; then
    mkdir -p "$OVERLOAD_ARTIFACT_DIR"
    cp "$workdir/overload.json" "$workdir/metrics.prom" "$OVERLOAD_ARTIFACT_DIR/"
fi

echo "== overload smoke test passed"
