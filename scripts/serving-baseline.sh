#!/usr/bin/env bash
# Regenerate BENCH_serving.json, the committed reference for the CI
# serving-bench regression gate. Run it whenever the serving tier changes
# deliberately (new workloads, changed admission defaults, a performance
# change that shifts tail latencies) — ideally on the CI runner class, though
# the embedded calibration sample normalizes moderate machine differences.
#
# The file records, per pass (local / cluster) and per Table III workload:
# request counts, p50/p99 latency, throughput, shed rate, and the canonical
# result hash (so CI also catches mining-output drift under load).
set -euo pipefail

cd "$(dirname "$0")/.."

# The recording run uses the same window length as the CI gate run
# (serving-bench.sh's default): p99 over a longer window systematically
# includes a deeper tail, so asymmetric durations would bias every ratio.
SERVING_RECORD=1 exec ./scripts/serving-bench.sh
