#!/usr/bin/env bash
# Multi-process smoke test: run a small D-CAND (and D-SEQ) job across three
# seqmine-worker processes over the TCP shuffle transport and verify that the
# pattern set is identical to the single-process in-process engine.
#
# Used by CI (.github/workflows/ci.yml) and runnable locally:
#
#	./scripts/multiproc-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmine ./cmd/seqmine-worker

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 400 -seed 7 -out "$workdir/data"

echo "== starting 3 workers"
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19090 -data-listen 127.0.0.1:19190 &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19091 -data-listen 127.0.0.1:19191 &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19092 -data-listen 127.0.0.1:19192 &

for port in 19090 19091 19092; do
    up=0
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        echo "worker on port $port did not come up" >&2
        exit 1
    fi
done

workers=http://127.0.0.1:19090,http://127.0.0.1:19091,http://127.0.0.1:19092
pattern='[.*(.)]{1,3}.*'
sigma=40

for algo in dcand dseq; do
    echo "== $algo: single-process reference"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/single-$algo.txt"

    echo "== $algo: 3-process cluster run"
    "$workdir/bin/seqmine-worker" -submit -workers "$workers" \
        -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/multi-$algo.txt"

    if [ ! -s "$workdir/single-$algo.txt" ]; then
        echo "$algo: single-process run found no patterns — smoke test is vacuous" >&2
        exit 1
    fi
    if ! diff -u "$workdir/single-$algo.txt" "$workdir/multi-$algo.txt"; then
        echo "$algo: multi-process pattern set differs from single-process" >&2
        exit 1
    fi
    echo "== $algo: $(wc -l <"$workdir/single-$algo.txt") patterns identical across 3 processes"
done

echo "== multi-process smoke test passed"
