#!/usr/bin/env bash
# Spill + streaming smoke test: mine a generated dataset whose shuffle
# footprint dwarfs a few-KB spill threshold, both in a single process and
# across three seqmine-worker processes, and verify that
#
#   1. the spilling runs produce a pattern set identical to the in-memory
#      reference run,
#   2. data actually spilled (SpilledBytes > 0), so the test is not vacuous,
#   3. the streaming pipelined shuffle (tiny -send-buffer, with compressed
#      spill) produces the same pattern set as barrier mode, single-process
#      and on the 3-worker cluster, and actually streamed batches.
#
# Used by CI (.github/workflows/ci.yml) and runnable locally:
#
#	./scripts/spill-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

threshold=4096
sendbuf=1024

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmine ./cmd/seqmine-worker

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 400 -seed 7 -out "$workdir/data"

echo "== starting 3 workers (spill segments under $workdir/spill)"
mkdir -p "$workdir/spill"
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19290 -data-listen 127.0.0.1:19390 -spill-dir "$workdir/spill" &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19291 -data-listen 127.0.0.1:19391 -spill-dir "$workdir/spill" &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19292 -data-listen 127.0.0.1:19392 -spill-dir "$workdir/spill" &

for port in 19290 19291 19292; do
    up=0
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        echo "worker on port $port did not come up" >&2
        exit 1
    fi
done

workers=http://127.0.0.1:19290,http://127.0.0.1:19291,http://127.0.0.1:19292
pattern='[.*(.)]{1,3}.*'
sigma=40

for algo in dseq dcand; do
    echo "== $algo: in-memory single-process reference"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/ref-$algo.txt"
    if [ ! -s "$workdir/ref-$algo.txt" ]; then
        echo "$algo: reference run found no patterns — smoke test is vacuous" >&2
        exit 1
    fi

    echo "== $algo: single-process run with -spill-threshold $threshold"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 \
        -spill-threshold "$threshold" -spill-dir "$workdir/spill" >"$workdir/local-$algo.out"
    grep -E '^ +[0-9]+  ' "$workdir/local-$algo.out" | sort >"$workdir/local-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/local-$algo.txt"; then
        echo "$algo: single-process spilling pattern set differs from the in-memory run" >&2
        exit 1
    fi
    spilled=$(sed -n 's/^spilled \([0-9]*\) bytes in \([0-9]*\) segments$/\1/p' "$workdir/local-$algo.out")
    if [ -z "$spilled" ] || [ "$spilled" -eq 0 ]; then
        echo "$algo: single-process run did not spill (threshold $threshold) — smoke test is vacuous" >&2
        cat "$workdir/local-$algo.out" >&2
        exit 1
    fi
    echo "== $algo: single process spilled $spilled bytes"

    echo "== $algo: 3-process cluster run with -spill-threshold $threshold"
    "$workdir/bin/seqmine-worker" -submit -workers "$workers" \
        -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 \
        -spill-threshold "$threshold" >"$workdir/multi-$algo.out"
    grep -E '^ +[0-9]+  ' "$workdir/multi-$algo.out" | sort >"$workdir/multi-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/multi-$algo.txt"; then
        echo "$algo: multi-process spilling pattern set differs from the in-memory run" >&2
        exit 1
    fi
    spilled=$(sed -n 's/^spilled \([0-9]*\) bytes in \([0-9]*\) segments across the cluster$/\1/p' "$workdir/multi-$algo.out")
    if [ -z "$spilled" ] || [ "$spilled" -eq 0 ]; then
        echo "$algo: cluster run did not spill (threshold $threshold) — smoke test is vacuous" >&2
        cat "$workdir/multi-$algo.out" >&2
        exit 1
    fi
    echo "== $algo: cluster spilled $spilled bytes; $(wc -l <"$workdir/ref-$algo.txt") patterns identical across all three runs"

    echo "== $algo: single-process streaming run with -send-buffer $sendbuf (+compressed spill)"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 \
        -send-buffer "$sendbuf" -spill-threshold "$threshold" -compress-spill \
        -spill-dir "$workdir/spill" >"$workdir/stream-$algo.out"
    grep -E '^ +[0-9]+  ' "$workdir/stream-$algo.out" | sort >"$workdir/stream-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/stream-$algo.txt"; then
        echo "$algo: single-process streaming pattern set differs from the barrier-mode run" >&2
        exit 1
    fi
    streamed=$(sed -n 's/^streamed \([0-9]*\) batches (shuffle time .*$/\1/p' "$workdir/stream-$algo.out")
    if [ -z "$streamed" ] || [ "$streamed" -eq 0 ]; then
        echo "$algo: single-process run did not stream (send buffer $sendbuf) — smoke test is vacuous" >&2
        cat "$workdir/stream-$algo.out" >&2
        exit 1
    fi
    echo "== $algo: single process streamed $streamed batches"

    echo "== $algo: 3-process streaming cluster run with -send-buffer $sendbuf"
    "$workdir/bin/seqmine-worker" -submit -workers "$workers" \
        -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 \
        -send-buffer "$sendbuf" >"$workdir/stream-multi-$algo.out"
    grep -E '^ +[0-9]+  ' "$workdir/stream-multi-$algo.out" | sort >"$workdir/stream-multi-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/stream-multi-$algo.txt"; then
        echo "$algo: multi-process streaming pattern set differs from the barrier-mode run" >&2
        exit 1
    fi
    streamed=$(sed -n 's/^streamed \([0-9]*\) batches across the cluster.*$/\1/p' "$workdir/stream-multi-$algo.out")
    if [ -z "$streamed" ] || [ "$streamed" -eq 0 ]; then
        echo "$algo: cluster run did not stream (send buffer $sendbuf) — smoke test is vacuous" >&2
        cat "$workdir/stream-multi-$algo.out" >&2
        exit 1
    fi
    echo "== $algo: cluster streamed $streamed batches; patterns identical across all five runs"
done

if find "$workdir/spill" -mindepth 1 | grep -q .; then
    echo "leftover spill segments were not cleaned up:" >&2
    find "$workdir/spill" >&2
    exit 1
fi

echo "== spill smoke test passed"
