#!/usr/bin/env bash
# Serving-tier benchmark: drive a live seqmined over HTTP with the Table III
# workloads (cmd/seqmine-bench) in two passes — local in-process execution
# and distributed execution over a 2-worker cluster — and gate the measured
# p99 latencies against the committed BENCH_serving.json.
#
# Used by CI (.github/workflows/ci.yml, serving-bench job) and runnable
# locally:
#
#	./scripts/serving-bench.sh                 # run + gate
#	SERVING_RECORD=1 ./scripts/serving-bench.sh  # run + overwrite BENCH_serving.json
#	                                             # (see scripts/serving-baseline.sh)
#
# The daemon runs with -result-cache 0 so repeated identical workload
# requests actually mine (a warm result cache would measure map lookups, not
# the serving path), and without admission bounds so nothing sheds — this
# benchmark measures latency, scripts/overload-smoke.sh measures shedding.
# seqmine-bench primes every workload unloaded first and fails the run if any
# loaded response diverges from the primed answer, so the gate also certifies
# output equivalence under load. Cross-machine comparability comes from the
# embedded calibration sample (the BenchmarkCalibration splitmix64 loop);
# benchgate serving divides the machine-speed factor out of every ratio.
set -euo pipefail

cd "$(dirname "$0")/.."

export GOMAXPROCS=${GOMAXPROCS:-2}
duration=${SERVING_DURATION:-3s}
concurrency=${SERVING_CONCURRENCY:-8}
out=${SERVING_OUT:-serving-current.json}

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmined ./cmd/seqmine-worker ./cmd/seqmine-bench

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 400 -seed 7 -out "$workdir/data"

wait_healthy() {
    local url=$1 what=$2
    for _ in $(seq 1 100); do
        if curl -fsS "$url/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "$what did not come up at $url" >&2
    exit 1
}

daemon=http://127.0.0.1:18080

echo "== pass local: seqmined, in-process execution"
"$workdir/bin/seqmined" -addr 127.0.0.1:18080 -result-cache 0 \
    -load "bench=$workdir/data/sequences.txt,$workdir/data/hierarchy.txt" &
daemon_pid=$!
wait_healthy "$daemon" seqmined

"$workdir/bin/seqmine-bench" -addr "$daemon" -dataset bench -sigma 40 \
    -duration "$duration" -concurrency "$concurrency" \
    -pass local -out "$out"

kill "$daemon_pid" 2>/dev/null || true
wait "$daemon_pid" 2>/dev/null || true

echo "== pass cluster: seqmined over a 2-worker cluster"
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:18091 -data-listen 127.0.0.1:18191 &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:18092 -data-listen 127.0.0.1:18192 &
wait_healthy http://127.0.0.1:18091 "worker 1"
wait_healthy http://127.0.0.1:18092 "worker 2"

"$workdir/bin/seqmined" -addr 127.0.0.1:18080 -result-cache 0 \
    -cluster http://127.0.0.1:18091,http://127.0.0.1:18092 \
    -load "bench=$workdir/data/sequences.txt,$workdir/data/hierarchy.txt" &
wait_healthy "$daemon" seqmined

"$workdir/bin/seqmine-bench" -addr "$daemon" -dataset bench -sigma 40 \
    -duration "$duration" -concurrency "$concurrency" \
    -distributed -pass cluster -merge -out "$out"

if [ "${SERVING_RECORD:-0}" = 1 ]; then
    echo "== recording BENCH_serving.json"
    cp "$out" BENCH_serving.json
    exit 0
fi

echo "== gating against BENCH_serving.json"
gate_args=(-baseline BENCH_serving.json -current "$out" -max-p99-ratio "${SERVING_MAX_RATIO:-1.15}")
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    gate_args+=(-summary "$GITHUB_STEP_SUMMARY")
fi
if [ -n "${SERVING_JSON:-}" ]; then
    gate_args+=(-json "$SERVING_JSON")
fi
go run ./cmd/benchgate serving "${gate_args[@]}"
