#!/usr/bin/env bash
# Regenerate BENCH_baseline.json, the committed reference for the CI
# bench-compare regression gate. Run this ON THE CI RUNNER CLASS (or rely on
# the BenchmarkCalibration normalization for moderate machine differences)
# whenever the tier-1 benchmark set changes or a deliberate performance
# change shifts the baseline.
#
# Tier-1 benchmarks are the end-to-end per-algorithm runs plus the hot-path
# component suites of the BSP engine, the DESQ-DFS/COUNT miner and the pivot
# search — the code the paper's results depend on:
#
#   - root:               BenchmarkAlgorithms_N1/*, BenchmarkAlgorithms_T3/*,
#                         BenchmarkSpanOverhead/* (tracing-cost budget)
#   - internal/mapreduce: the shuffle/spill engine
#   - internal/miner:     the local miners (BenchmarkMineCount rides the flat
#                         candidate enumeration — a map-phase kernel)
#   - internal/pivot:     the pivot search, including BenchmarkPivotAnalyze_T3
#                         (grid and run-enumeration over the AMZN-F T3
#                         workload — the per-sequence D-SEQ map kernel)
#
# The map-phase kernels (BenchmarkPivotAnalyze*, BenchmarkAnalyze*,
# BenchmarkMineCount*) are called out in their own table section of the CI
# bench-compare step summary (benchcmp.FormatMarkdown).
#
# BenchmarkCalibration is recorded alongside them for machine-speed
# normalization; it is excluded from the gate's geomean.
#
# Environment pinning:
#   - GOMAXPROCS is pinned (both via the env var, which bounds the runtime's
#     background parallelism, and -cpu, which names the benchmarks) so
#     benchmark names carry the same "-2" suffix on every machine (benchgate
#     strips exactly one trailing "-N"; without a fixed -cpu, a single-core
#     recorder would emit suffix-less names that cannot be matched against a
#     multi-core runner's) and so scheduler parallelism cannot drift between
#     the recorder and the runner.
#   - -benchmem records B/op and allocs/op: the schema-2 baseline gates
#     allocations alongside time (allocation counts are machine-independent,
#     so no calibration applies to them).
#   - The spill and streaming shuffle knobs are explicitly disabled inside
#     the gated benchmarks themselves (benchOptions in bench_test.go), so the
#     baseline always measures the in-memory barrier path.
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime=3x
count=5
export GOMAXPROCS=2
out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== running tier-1 benchmarks (-benchtime=$benchtime -count=$count -cpu 2 -benchmem, GOMAXPROCS=$GOMAXPROCS)"
go test -run '^$' -bench '^(BenchmarkAlgorithms_N1|BenchmarkAlgorithms_T3|BenchmarkCalibration|BenchmarkSpanOverhead)$' \
    -benchtime="$benchtime" -count="$count" -cpu 2 -benchmem . | tee "$out"
go test -run '^$' -bench . -benchtime="$benchtime" -count="$count" -cpu 2 -benchmem \
    ./internal/mapreduce ./internal/miner ./internal/pivot | tee -a "$out"

# Record the recording environment alongside the command so a future reader
# can judge whether a drift is machine or code: kernel, CPU model and count,
# and the pinned GOMAXPROCS (the Go version is recorded separately).
cpus=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo '?')
cpu_model=$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)
env_note="GOMAXPROCS=$GOMAXPROCS cpus=$cpus cpu=\"$cpu_model\" kernel=$(uname -sr)"

# The TCP shuffle-overlap benchmarks are wall-clock dominated (real sockets,
# idle-gated overflow replay) and their medians swing 2-3x between identical
# runs; they get their own wide per-benchmark gates instead of polluting the
# geomeans.
echo "== recording BENCH_baseline.json"
go run ./cmd/benchgate record \
    -command "scripts/bench-baseline.sh (go test -bench tier-1 -benchtime=$benchtime -count=$count -cpu 2 -benchmem; spill/stream knobs disabled; $env_note)" \
    -tolerance 'BenchmarkShuffleOverlapTCP/barrier=2.5' \
    -tolerance 'BenchmarkShuffleOverlapTCP/streaming=2.5' \
    <"$out"
