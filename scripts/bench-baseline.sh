#!/usr/bin/env bash
# Regenerate BENCH_baseline.json, the committed reference for the CI
# bench-compare regression gate. Run this ON THE CI RUNNER CLASS (or rely on
# the BenchmarkCalibration normalization for moderate machine differences)
# whenever the tier-1 benchmark set changes or a deliberate performance
# change shifts the baseline.
#
# Tier-1 benchmarks are the end-to-end per-algorithm runs plus the hot-path
# component suites of the BSP engine, the DESQ-DFS/COUNT miner and the pivot
# search — the code the paper's results depend on:
#
#   - root:               BenchmarkAlgorithms_N1/*, BenchmarkAlgorithms_T3/*,
#                         BenchmarkSpanOverhead/* (tracing-cost budget)
#   - internal/mapreduce: the shuffle/spill engine
#   - internal/miner:     the local miners
#   - internal/pivot:     the pivot search
#
# BenchmarkCalibration is recorded alongside them for machine-speed
# normalization; it is excluded from the gate's geomean.
#
# -cpu 2 pins GOMAXPROCS so benchmark names carry the same "-2" suffix on
# every machine (benchgate strips exactly one trailing "-N"; without a fixed
# -cpu, a single-core recorder would emit suffix-less names that cannot be
# matched against a multi-core runner's).
set -euo pipefail

cd "$(dirname "$0")/.."

benchtime=3x
count=5
out=$(mktemp)
trap 'rm -f "$out"' EXIT

echo "== running tier-1 benchmarks (-benchtime=$benchtime -count=$count -cpu 2)"
go test -run '^$' -bench '^(BenchmarkAlgorithms_N1|BenchmarkAlgorithms_T3|BenchmarkCalibration|BenchmarkSpanOverhead)$' \
    -benchtime="$benchtime" -count="$count" -cpu 2 . | tee "$out"
go test -run '^$' -bench . -benchtime="$benchtime" -count="$count" -cpu 2 \
    ./internal/mapreduce ./internal/miner ./internal/pivot | tee -a "$out"

echo "== recording BENCH_baseline.json"
go run ./cmd/benchgate record \
    -command "scripts/bench-baseline.sh (go test -bench tier-1 -benchtime=$benchtime -count=$count)" \
    <"$out"
