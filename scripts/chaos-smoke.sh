#!/usr/bin/env bash
# Chaos smoke test: run a distributed D-SEQ job across three seqmine-worker
# processes and SIGKILL one of them mid-job. The task-based scheduler must
#
#   1. declare the killed worker dead and retry the attempt on the two
#      survivors under a fresh epoch (non-zero retry metrics),
#   2. produce a pattern set byte-identical to the single-process run,
#   3. ship zero sequence bytes on the retry (the dataset store already
#      holds the bundle on the survivors).
#
# It also exercises the observability surface end-to-end: the submit client
# writes the job's merged trace as Chrome trace-event JSON (-trace-out), and a
# surviving worker's GET /metrics?format=prometheus scrape must pass promcheck
# with populated stage-latency histograms. Set CHAOS_ARTIFACT_DIR to keep the
# trace and metrics scrape of the passing round (CI uploads them as workflow
# artifacts).
#
# The kill lands on a wall-clock timer, so a freakishly fast job could finish
# before it; the run is retried a few times and fails only if no round
# observes a retry. Used by CI (.github/workflows/ci.yml) and runnable
# locally:
#
#	./scripts/chaos-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmine ./cmd/seqmine-worker

echo "== generating dataset"
# Large enough that a distributed job comfortably outlives the kill delay
# below — the shuffle-spine and hot-path optimizations keep shortening the
# job, and a job that finishes before the kill lands exercises nothing.
"$workdir/bin/seqgen" -dataset nyt -n 6000 -seed 7 -out "$workdir/data"

pattern='[.*(.)]{1,3}.*'
sigma=60

echo "== single-process reference"
"$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
    -pattern "$pattern" -sigma "$sigma" -algorithm dseq -top 0 -metrics=false |
    grep -E '^ +[0-9]+  ' | sort >"$workdir/single.txt"
if [ ! -s "$workdir/single.txt" ]; then
    echo "single-process run found no patterns — smoke test is vacuous" >&2
    exit 1
fi

start_worker() { # port dataport -> pid
    # Redirect stdout/stderr to a log: the worker must not inherit the
    # command-substitution pipe, or $(start_worker ...) would block until the
    # worker exits.
    "$workdir/bin/seqmine-worker" -listen "127.0.0.1:$1" -data-listen "127.0.0.1:$2" \
        >"$workdir/worker-$1.log" 2>&1 &
    echo $!
}

wait_healthy() { # port
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "worker on port $1 did not come up" >&2
    return 1
}

workers=http://127.0.0.1:19590,http://127.0.0.1:19591,http://127.0.0.1:19592

for round in 1 2 3; do
    echo "== round $round: starting 3 workers"
    W1=$(start_worker 19590 19690)
    W2=$(start_worker 19591 19691)
    W3=$(start_worker 19592 19692)
    wait_healthy 19590
    wait_healthy 19591
    wait_healthy 19592

    echo "== round $round: submitting job, SIGKILLing worker 3 mid-job"
    (sleep 0.25; kill -9 "$W3" 2>/dev/null || true) &
    killer=$!
    set +e
    "$workdir/bin/seqmine-worker" -submit -workers "$workers" \
        -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm dseq -top 0 -task-retries 3 \
        -trace-out "$workdir/trace.json" \
        >"$workdir/chaos.out" 2>"$workdir/chaos.err"
    status=$?
    set -e
    wait "$killer" 2>/dev/null || true

    # Scrape a surviving worker's Prometheus exposition while it is still up
    # and validate it (under set -e): well-formed exposition text with
    # populated worker stage-latency histograms from the job that just ran.
    if [ "$status" -eq 0 ]; then
        curl -fsS 'http://127.0.0.1:19590/metrics?format=prometheus' >"$workdir/metrics.prom"
        go run ./cmd/promcheck -require seqmine_worker_stage_seconds \
            -require seqmine_worker_jobs_total <"$workdir/metrics.prom"
    fi

    kill "$W1" "$W2" 2>/dev/null || true
    kill -9 "$W3" 2>/dev/null || true
    wait 2>/dev/null || true

    if [ "$status" -ne 0 ]; then
        echo "round $round: submission failed despite the retry budget:" >&2
        cat "$workdir/chaos.err" >&2
        exit 1
    fi

    grep -E '^ +[0-9]+  ' "$workdir/chaos.out" | sort >"$workdir/chaos.txt"
    if ! diff -u "$workdir/single.txt" "$workdir/chaos.txt"; then
        echo "round $round: pattern set after the kill differs from the single-process run" >&2
        exit 1
    fi
    echo "== round $round: $(wc -l <"$workdir/single.txt") patterns identical after the kill"

    retries=$(sed -n 's/^scheduler: .* \([0-9][0-9]*\) retries.*$/\1/p' "$workdir/chaos.out")
    dead=$(sed -n 's/^scheduler: .* \([0-9][0-9]*\) dead workers.*$/\1/p' "$workdir/chaos.out")
    echo "== round $round: retries=$retries dead_workers=$dead"
    if [ -n "$retries" ] && [ "$retries" -gt 0 ] && [ -n "$dead" ] && [ "$dead" -gt 0 ]; then
        echo "== chaos smoke test passed (round $round observed the kill: $retries retries, $dead dead workers)"
        sed -n 's/^\(scheduler: .*\)$/   \1/p;s/^\(dataset store: .*\)$/   \1/p' "$workdir/chaos.out"
        if [ -n "${CHAOS_ARTIFACT_DIR:-}" ]; then
            mkdir -p "$CHAOS_ARTIFACT_DIR"
            cp "$workdir/trace.json" "$CHAOS_ARTIFACT_DIR/chaos-trace.json"
            cp "$workdir/metrics.prom" "$CHAOS_ARTIFACT_DIR/chaos-metrics.prom"
            echo "== observability artifacts kept in $CHAOS_ARTIFACT_DIR"
        fi
        exit 0
    fi
    echo "== round $round: job finished before the kill landed (retries=$retries); retrying with a fresh cluster"
done

echo "no round observed a mid-job kill with retries — scheduler fault tolerance not exercised" >&2
exit 1
