#!/usr/bin/env bash
# Prefilter smoke test: mine a generated dataset with a selective constraint
# (so the prefilter has sequences to reject) with and without -prefilter,
# both in a single process (dfs, count, dseq, dcand) and across three
# seqmine-worker processes (dseq, dcand), and verify that
#
#   1. every prefiltered run produces a pattern set byte-identical to its
#      unfiltered counterpart — the prefilter is a pure skip of sequences
#      without accepting runs and must never change results,
#   2. the reference runs find patterns, so the comparison is not vacuous.
#
# Used by CI (.github/workflows/ci.yml) and runnable locally:
#
#	./scripts/prefilter-smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
cleanup() {
    kill $(jobs -p) 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/bin/" ./cmd/seqgen ./cmd/seqmine ./cmd/seqmine-worker

echo "== generating dataset"
"$workdir/bin/seqgen" -dataset nyt -n 400 -seed 7 -out "$workdir/data"

echo "== starting 3 workers"
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19590 -data-listen 127.0.0.1:19690 &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19591 -data-listen 127.0.0.1:19691 &
"$workdir/bin/seqmine-worker" -listen 127.0.0.1:19592 -data-listen 127.0.0.1:19692 &

for port in 19590 19591 19592; do
    up=0
    for _ in $(seq 1 100); do
        if curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            up=1
            break
        fi
        sleep 0.1
    done
    if [ "$up" != 1 ]; then
        echo "worker on port $port did not come up" >&2
        exit 1
    fi
done

workers=http://127.0.0.1:19590,http://127.0.0.1:19591,http://127.0.0.1:19592
# A selective constraint: many sequences have no ENTITY pair, so the
# prefilter actually rejects inputs instead of passing everything through.
pattern='.*ENTITY (VERB+ NOUN+? PREP?) ENTITY.*'
sigma=3

for algo in dfs count dseq dcand; do
    echo "== $algo: single-process reference (no prefilter)"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/ref-$algo.txt"
    if [ ! -s "$workdir/ref-$algo.txt" ]; then
        echo "$algo: reference run found no patterns — smoke test is vacuous" >&2
        exit 1
    fi

    echo "== $algo: single-process run with -prefilter"
    "$workdir/bin/seqmine" -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false -prefilter |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/pf-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/pf-$algo.txt"; then
        echo "$algo: prefiltered pattern set differs from the unfiltered run" >&2
        exit 1
    fi
    echo "== $algo: $(wc -l <"$workdir/ref-$algo.txt") patterns identical with and without prefilter"
done

for algo in dseq dcand; do
    echo "== $algo: 3-process cluster run with -prefilter"
    "$workdir/bin/seqmine-worker" -submit -workers "$workers" \
        -data "$workdir/data/sequences.txt" -hierarchy "$workdir/data/hierarchy.txt" \
        -pattern "$pattern" -sigma "$sigma" -algorithm "$algo" -top 0 -metrics=false -prefilter |
        grep -E '^ +[0-9]+  ' | sort >"$workdir/multi-pf-$algo.txt"
    if ! diff -u "$workdir/ref-$algo.txt" "$workdir/multi-pf-$algo.txt"; then
        echo "$algo: prefiltered cluster pattern set differs from the single-process reference" >&2
        exit 1
    fi
    echo "== $algo: cluster prefiltered run identical to the reference"
done

echo "== prefilter smoke test passed"
